#include "core/instr/validate.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/error.h"

namespace dpipe {

namespace {

/// Everything observed about one (device, backbone, stage) while scanning
/// a stream. Keying by stage (not just device) lets one device host
/// several virtual stages of the same backbone — the interleaved placement
/// — with each owned stage fenced independently.
struct HostRecord {
  int stage = -1;          ///< Hosted stage (from fwd/bwd ops); -1 = none.
  int component = -1;
  int layer_begin = 0;
  int layer_end = 0;
  double samples = -1.0;
  std::map<int, std::vector<int>> fwd_pos;   ///< micro -> stream positions.
  std::map<int, std::vector<int>> bwd_pos;
  std::map<int, std::vector<int>> load_pos;
  std::map<int, std::vector<int>> recv_act_pos;
  std::map<int, std::vector<int>> send_act_pos;
  std::map<int, std::vector<int>> recv_grad_pos;
  std::map<int, std::vector<int>> send_grad_pos;
  std::vector<int> fwd_micro_order;  ///< Micro of each fwd, stream order.
  std::vector<int> bwd_micro_order;
  std::vector<int> allreduce_pos;
  std::vector<double> allreduce_size;
  std::vector<int> optimizer_pos;
  std::vector<Instruction> optimizer_instr;
};

/// Boundary identity of a message: (src, dst, backbone, receiver stage,
/// micro, is-gradient). Sends are emitted with the sender's stage id, so
/// the receiver stage is stage+1 for activations and stage-1 for grads.
using MsgKey = std::tuple<int, int, int, int, int, bool>;

struct MsgSide {
  int count = 0;
  double size_mb = 0.0;
  bool size_conflict = false;
};

std::string msg_name(const MsgKey& key) {
  std::ostringstream out;
  out << (std::get<5>(key) ? "gradient" : "activation") << " b"
      << std::get<2>(key) << " s" << std::get<3>(key) << " m"
      << std::get<4>(key) << " (" << std::get<0>(key) << "->"
      << std::get<1>(key) << ")";
  return out.str();
}

void note(ValidationReport& report, int device, std::string message) {
  report.issues.push_back({device, std::move(message)});
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  for (const ValidationIssue& issue : issues) {
    if (issue.device >= 0) {
      out << "device " << issue.device << ": ";
    }
    out << issue.message << "\n";
  }
  return out.str();
}

ValidationReport ProgramValidator::validate(
    const InstructionProgram& program) const {
  ValidationReport report;
  const int D = program.group_size;
  if (D < 1 || program.num_backbones < 1) {
    note(report, -1, "group_size and num_backbones must be positive");
    return report;
  }
  if (static_cast<int>(program.per_device.size()) != D ||
      static_cast<int>(program.preamble.size()) != D) {
    note(report, -1, "per_device/preamble stream count != group_size");
    return report;
  }

  // ---- Pass 1: per-device scan (field sanity + host records). ----
  /// (dev, backbone, stage) — every instruction kind that feeds a host
  /// record carries its stage (loads are stage 0, sends the sender's
  /// stage), so records of co-hosted virtual stages never mix.
  std::map<std::tuple<int, int, int>, HostRecord> hosts;
  std::map<MsgKey, MsgSide> sends;
  std::map<MsgKey, MsgSide> recvs;

  const auto record_msg = [&](std::map<MsgKey, MsgSide>& side,
                              const MsgKey& key, double size_mb) {
    MsgSide& m = side[key];
    if (m.count > 0 && m.size_mb != size_mb) {
      m.size_conflict = true;
    }
    ++m.count;
    m.size_mb = size_mb;
  };

  for (int dev = 0; dev < D; ++dev) {
    const std::vector<Instruction>& stream = program.per_device[dev];
    for (int pos = 0; pos < static_cast<int>(stream.size()); ++pos) {
      const Instruction& i = stream[pos];
      if (i.backbone < 0 || i.backbone >= program.num_backbones) {
        note(report, dev, std::string("backbone index out of range in ") +
                              to_string(i.kind));
        continue;
      }
      const auto host_of = [&](int stage) -> HostRecord& {
        return hosts[{dev, i.backbone, stage}];
      };
      switch (i.kind) {
        case InstrKind::kLoadMicroBatch:
          if (i.stage != 0) {
            note(report, dev, "load must target stage 0");
          }
          if (i.micro < 0) {
            note(report, dev, "load without a micro-batch index");
          }
          if (i.samples <= 0.0) {
            note(report, dev, "load with non-positive samples");
          }
          host_of(i.stage).load_pos[i.micro].push_back(pos);
          break;
        case InstrKind::kForward:
        case InstrKind::kBackward: {
          const bool fwd = i.kind == InstrKind::kForward;
          if (i.micro < 0) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " without a micro-batch index");
          }
          if (i.component < 0 || i.layer_begin < 0 ||
              i.layer_begin >= i.layer_end) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " with invalid component/layer range");
          }
          if (i.samples <= 0.0) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " with non-positive samples");
          }
          HostRecord& host = host_of(i.stage);
          if (host.stage < 0) {
            host.stage = i.stage;
            host.component = i.component;
            host.layer_begin = i.layer_begin;
            host.layer_end = i.layer_end;
            host.samples = i.samples;
          } else {
            if (host.component != i.component ||
                host.layer_begin != i.layer_begin ||
                host.layer_end != i.layer_end) {
              note(report, dev,
                   std::string(to_string(i.kind)) +
                       " layer range disagrees with the hosted stage");
            }
            if (host.samples != i.samples) {
              note(report, dev, std::string(to_string(i.kind)) +
                                    " samples disagree across micros");
            }
          }
          if (i.stage < 0) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " with negative stage");
          }
          if (fwd) {
            host.fwd_pos[i.micro].push_back(pos);
            host.fwd_micro_order.push_back(i.micro);
          } else {
            host.bwd_pos[i.micro].push_back(pos);
            host.bwd_micro_order.push_back(i.micro);
          }
          break;
        }
        case InstrKind::kSendActivation:
        case InstrKind::kSendGradient:
        case InstrKind::kRecvActivation:
        case InstrKind::kRecvGradient: {
          const bool send = i.kind == InstrKind::kSendActivation ||
                            i.kind == InstrKind::kSendGradient;
          const bool grad = i.kind == InstrKind::kSendGradient ||
                            i.kind == InstrKind::kRecvGradient;
          if (i.peer < 0 || i.peer >= D) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " peer out of range");
            break;
          }
          if (i.peer == dev) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " targets its own device");
            break;
          }
          if (i.micro < 0) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " without a micro-batch index");
            break;
          }
          if (i.size_mb < 0.0) {
            note(report, dev, std::string(to_string(i.kind)) +
                                  " with negative payload");
          }
          HostRecord& host = host_of(i.stage);
          if (send) {
            const int receiver_stage = i.stage + (grad ? -1 : 1);
            record_msg(sends, {dev, i.peer, i.backbone, receiver_stage,
                               i.micro, grad},
                       i.size_mb);
            if (grad) {
              host.send_grad_pos[i.micro].push_back(pos);
            } else {
              host.send_act_pos[i.micro].push_back(pos);
            }
          } else {
            record_msg(recvs, {i.peer, dev, i.backbone, i.stage, i.micro,
                               grad},
                       i.size_mb);
            if (grad) {
              host.recv_grad_pos[i.micro].push_back(pos);
            } else {
              host.recv_act_pos[i.micro].push_back(pos);
            }
          }
          break;
        }
        case InstrKind::kFrozenForward:
          if (i.component < 0 || i.layer_begin < 0 ||
              i.layer_begin >= i.layer_end) {
            note(report, dev, "frozen op with invalid component/layer range");
          }
          if (i.samples <= 0.0) {
            note(report, dev, "frozen op with non-positive samples");
          }
          break;
        case InstrKind::kAllReduceGrads:
          host_of(i.stage).allreduce_pos.push_back(pos);
          host_of(i.stage).allreduce_size.push_back(i.size_mb);
          break;
        case InstrKind::kOptimizerStep:
          if (i.layer_begin < 0 || i.layer_begin >= i.layer_end) {
            note(report, dev, "optimizer step with invalid layer range");
          }
          host_of(i.stage).optimizer_pos.push_back(pos);
          host_of(i.stage).optimizer_instr.push_back(i);
          break;
      }
    }
    for (const Instruction& i : program.preamble[dev]) {
      if (i.kind != InstrKind::kFrozenForward) {
        note(report, dev, std::string("preamble contains ") +
                              to_string(i.kind) +
                              " (only frozen forwards allowed)");
      } else if (i.component < 0 || i.layer_begin >= i.layer_end ||
                 i.samples <= 0.0) {
        note(report, dev, "preamble frozen op with invalid fields");
      }
    }
  }

  // ---- Pass 2: backbone topology (stage monotonicity). ----
  // num stages / num micros per backbone, inferred from the program.
  std::vector<int> num_stages(program.num_backbones, 0);
  std::vector<int> num_micros(program.num_backbones, 0);
  // (backbone, stage) -> hosting devices.
  std::map<std::pair<int, int>, std::vector<int>> stage_devices;
  for (const auto& [key, host] : hosts) {
    const auto [dev, backbone, stage] = key;
    if (host.stage < 0) {
      // Channel/allreduce/optimizer/load ops for a stage this device never
      // runs forward/backward on.
      note(report, dev,
           "backbone " + std::to_string(backbone) + " stage " +
               std::to_string(stage) +
               " ops on a device that does not host that stage");
      continue;
    }
    num_stages[backbone] = std::max(num_stages[backbone], host.stage + 1);
    for (const auto& [micro, positions] : host.fwd_pos) {
      num_micros[backbone] = std::max(num_micros[backbone], micro + 1);
    }
    stage_devices[{backbone, host.stage}].push_back(dev);
  }
  for (int b = 0; b < program.num_backbones; ++b) {
    int expected_begin = 0;
    for (int s = 0; s < num_stages[b]; ++s) {
      const auto it = stage_devices.find({b, s});
      if (it == stage_devices.end()) {
        note(report, -1, "stage " + std::to_string(s) + " of backbone " +
                             std::to_string(b) + " is hosted by no device");
        expected_begin = -1;
        continue;
      }
      const HostRecord& first = hosts.at({it->second.front(), b, s});
      for (const int dev : it->second) {
        const HostRecord& host = hosts.at({dev, b, s});
        if (host.component != first.component ||
            host.layer_begin != first.layer_begin ||
            host.layer_end != first.layer_end) {
          note(report, dev,
               "replicas of backbone " + std::to_string(b) + " stage " +
                   std::to_string(s) + " disagree on the layer range");
        }
      }
      if (expected_begin >= 0 && first.layer_begin != expected_begin) {
        note(report, -1,
             "backbone " + std::to_string(b) + " stage " +
                 std::to_string(s) +
                 " layer range is not contiguous with its predecessor");
      }
      expected_begin = first.layer_end;
    }
  }

  // ---- Pass 3: per-host micro fencing + allreduce/optimizer ordering. ----
  for (const auto& [key, host] : hosts) {
    const int dev = std::get<0>(key);
    const int backbone = std::get<1>(key);
    if (host.stage < 0) {
      continue;
    }
    const int S = num_stages[backbone];
    const int M = num_micros[backbone];
    const bool first_stage = host.stage == 0;
    const bool last_stage = host.stage == S - 1;
    int last_bwd_pos = -1;
    const std::string tag =
        "backbone " + std::to_string(backbone) + " stage " +
        std::to_string(host.stage);
    for (int m = 0; m < M; ++m) {
      const auto fwd_it = host.fwd_pos.find(m);
      const auto bwd_it = host.bwd_pos.find(m);
      if (fwd_it == host.fwd_pos.end() || fwd_it->second.size() != 1) {
        note(report, dev, tag + " micro " + std::to_string(m) +
                              " must run forward exactly once");
        continue;
      }
      if (bwd_it == host.bwd_pos.end() || bwd_it->second.size() != 1) {
        note(report, dev, tag + " micro " + std::to_string(m) +
                              " must run backward exactly once");
        continue;
      }
      const int fwd = fwd_it->second.front();
      const int bwd = bwd_it->second.front();
      if (bwd < fwd) {
        note(report, dev, tag + " micro " + std::to_string(m) +
                              " runs backward before forward");
      }
      last_bwd_pos = std::max(last_bwd_pos, bwd);
      // What must feed the forward / follow the compute.
      const auto check_one = [&](const std::map<int, std::vector<int>>& side,
                                 bool expected, bool before, int anchor,
                                 const char* what) {
        const auto it = side.find(m);
        const int count =
            it == side.end() ? 0 : static_cast<int>(it->second.size());
        if (!expected) {
          if (count != 0) {
            note(report, dev, tag + " micro " + std::to_string(m) +
                                  ": unexpected " + what);
          }
          return;
        }
        if (count != 1) {
          note(report, dev, tag + " micro " + std::to_string(m) +
                                " needs exactly one " + what);
          return;
        }
        const int pos = it->second.front();
        if (before ? pos > anchor : pos < anchor) {
          note(report, dev, tag + " micro " + std::to_string(m) + ": " +
                                what + " on the wrong side of its compute");
        }
      };
      check_one(host.load_pos, first_stage, true, fwd, "micro-batch load");
      check_one(host.recv_act_pos, !first_stage, true, fwd,
                "activation receive");
      check_one(host.send_act_pos, !last_stage, false, fwd,
                "activation send");
      check_one(host.recv_grad_pos, !last_stage, true, bwd,
                "gradient receive");
      check_one(host.send_grad_pos, !first_stage, false, bwd,
                "gradient send");
    }
    for (const auto& [micro, positions] : host.fwd_pos) {
      if (micro >= M) {
        note(report, dev, tag + " forward micro index beyond range");
      }
    }
    // The allreduce is issued by the backward of the highest micro index
    // (asynchronously — GPipe's LIFO order runs that backward first); the
    // optimizer step is the fence that must follow *every* backward and
    // the allreduce itself.
    const auto trigger_it = host.bwd_pos.find(M - 1);
    const int trigger_pos =
        trigger_it != host.bwd_pos.end() && trigger_it->second.size() == 1
            ? trigger_it->second.front()
            : -1;
    if (host.allreduce_pos.size() != 1) {
      note(report, dev, tag + " needs exactly one gradient allreduce");
    } else {
      if (host.allreduce_pos.front() < trigger_pos) {
        note(report, dev, tag + " issues its allreduce before the backward "
                              "that triggers it");
      }
    }
    if (host.optimizer_pos.size() != 1) {
      note(report, dev, tag + " needs exactly one optimizer step");
    } else {
      const Instruction& opt = host.optimizer_instr.front();
      if (host.optimizer_pos.front() < last_bwd_pos) {
        note(report, dev, tag + " steps the optimizer before the last "
                              "backward");
      }
      if (!host.allreduce_pos.empty() &&
          host.optimizer_pos.front() < host.allreduce_pos.front()) {
        note(report, dev, tag + " steps the optimizer before its allreduce");
      }
      if (opt.stage != host.stage) {
        note(report, dev, tag + " optimizer step targets another stage");
      }
      if (opt.component != host.component ||
          opt.layer_begin != host.layer_begin ||
          opt.layer_end != host.layer_end) {
        note(report, dev,
             tag + " optimizer step does not cover the stage's layers");
      }
    }
  }

  // ---- Pass 4: allreduce group composition. ----
  for (const auto& [key, devices] : stage_devices) {
    const auto [backbone, stage] = key;
    double size = -1.0;
    for (const int dev : devices) {
      const HostRecord& host = hosts.at({dev, backbone, stage});
      if (host.allreduce_size.empty()) {
        continue;  // Reported in pass 3.
      }
      if (size < 0.0) {
        size = host.allreduce_size.front();
      } else if (size != host.allreduce_size.front()) {
        note(report, dev,
             "backbone " + std::to_string(backbone) + " stage " +
                 std::to_string(stage) +
                 " replicas disagree on the allreduce payload");
      }
    }
  }

  // ---- Pass 5: send/recv multiset pairing. ----
  for (const auto& [key, recv] : recvs) {
    const auto it = sends.find(key);
    if (it == sends.end()) {
      note(report, std::get<1>(key),
           "dangling receive: no matching send for " + msg_name(key));
      continue;
    }
    if (it->second.count != recv.count) {
      note(report, std::get<1>(key),
           "send/recv count mismatch for " + msg_name(key));
    }
    if (it->second.size_mb != recv.size_mb || recv.size_conflict ||
        it->second.size_conflict) {
      note(report, std::get<1>(key),
           "send/recv payload size mismatch for " + msg_name(key));
    }
  }
  for (const auto& [key, send] : sends) {
    if (recvs.find(key) == recvs.end()) {
      note(report, std::get<0>(key),
           "dangling send: no matching receive for " + msg_name(key));
    }
  }
  return report;
}

ValidationReport ProgramValidator::validate_runtime_bindable(
    const InstructionProgram& program) const {
  ValidationReport report = validate(program);
  if (!report.ok()) {
    return report;
  }
  if (program.num_backbones != 1) {
    note(report, -1, "runtime binding requires a single backbone");
    return report;
  }
  // Cover-and-fencing contract (replaces the historical stage↔device
  // bijection): every stage is owned by exactly one device, but a device
  // may own several virtual stages (the interleaved placement). Per owned
  // stage the backward micro order must equal the forward micro order
  // (FIFO autograd stashes), and because the runtime's channels are
  // untagged FIFOs, each pipeline boundary's send micro order must equal
  // the receiver's recv micro order.
  const int D = program.group_size;
  std::map<int, int> owner;  ///< stage -> owning device.
  std::vector<std::vector<int>> owned(D);  ///< dev -> stages, stream order.
  // Per (dev, stage) micro sequences in stream order.
  std::map<std::pair<int, int>, std::vector<int>> fwd_order;
  std::map<std::pair<int, int>, std::vector<int>> bwd_order;
  std::map<std::pair<int, int>, std::vector<int>> send_act_order;
  std::map<std::pair<int, int>, std::vector<int>> recv_act_order;
  std::map<std::pair<int, int>, std::vector<int>> send_grad_order;
  std::map<std::pair<int, int>, std::vector<int>> recv_grad_order;
  int num_stages = 0;
  for (int dev = 0; dev < D; ++dev) {
    for (const Instruction& i : program.per_device[dev]) {
      switch (i.kind) {
        case InstrKind::kForward:
          if (fwd_order.find({dev, i.stage}) == fwd_order.end()) {
            owned[dev].push_back(i.stage);
          }
          fwd_order[{dev, i.stage}].push_back(i.micro);
          num_stages = std::max(num_stages, i.stage + 1);
          break;
        case InstrKind::kBackward:
          bwd_order[{dev, i.stage}].push_back(i.micro);
          break;
        case InstrKind::kSendActivation:
          send_act_order[{dev, i.stage}].push_back(i.micro);
          break;
        case InstrKind::kRecvActivation:
          recv_act_order[{dev, i.stage}].push_back(i.micro);
          break;
        case InstrKind::kSendGradient:
          send_grad_order[{dev, i.stage}].push_back(i.micro);
          break;
        case InstrKind::kRecvGradient:
          recv_grad_order[{dev, i.stage}].push_back(i.micro);
          break;
        default:
          break;
      }
    }
    if (owned[dev].empty()) {
      note(report, dev, "device hosts no stage; runtime binding needs "
                        "every device to own at least one stage");
      continue;
    }
    for (const int stage : owned[dev]) {
      if (owner.count(stage) > 0) {
        note(report, dev, "stage " + std::to_string(stage) +
                              " is owned by more than one device "
                              "(replicated stages are not bindable); "
                              "runtime binding requires each stage owned "
                              "exactly once");
        continue;
      }
      owner[stage] = dev;
      if (fwd_order[{dev, stage}] != bwd_order[{dev, stage}]) {
        note(report, dev,
             "stage " + std::to_string(stage) +
                 ": backward micro order differs from forward micro order; "
                 "the runtime's FIFO autograd stashes require FIFO "
                 "schedules (1F1B)");
      }
    }
  }
  if (!report.ok()) {
    return report;
  }
  // Multi-stage devices must follow the round-robin virtual-stage
  // placement: V = num_stages / D full rounds, device d owning stages
  // {d, d + D, ...} in that (slot) order. Single-stage-per-device programs
  // keep the historical freedom of an arbitrary bijection.
  bool multi = false;
  for (int dev = 0; dev < D; ++dev) {
    multi = multi || owned[dev].size() > 1;
  }
  if (multi) {
    if (num_stages % D != 0) {
      note(report, -1,
           "interleaved binding requires num_stages to be a multiple of "
           "group_size");
      return report;
    }
    const int V = num_stages / D;
    for (int dev = 0; dev < D; ++dev) {
      bool round_robin = static_cast<int>(owned[dev].size()) == V;
      for (int slot = 0; round_robin && slot < V; ++slot) {
        round_robin = owned[dev][slot] == dev + slot * D;
      }
      if (!round_robin) {
        note(report, dev,
             "out-of-round-robin virtual-stage placement: device " +
                 std::to_string(dev) + " must own stages d, d+D, ... in "
                 "slot order");
      }
    }
    if (!report.ok()) {
      return report;
    }
  }
  // Channel-FIFO pairing: per boundary, the sender pushes and the receiver
  // pops the same micro sequence (untagged FIFO channels deliver tensors
  // in push order, so any reordering would hand micro m another micro's
  // tensor).
  for (int s = 0; s + 1 < num_stages; ++s) {
    const int src = owner.at(s);
    const int dst = owner.at(s + 1);
    if (send_act_order[{src, s}] != recv_act_order[{dst, s + 1}]) {
      note(report, dst,
           "activation channel order mismatch at boundary " +
               std::to_string(s) + "->" + std::to_string(s + 1) +
               ": the receiver pops micros in a different order than the "
               "sender pushes them");
    }
    if (send_grad_order[{dst, s + 1}] != recv_grad_order[{src, s}]) {
      note(report, src,
           "gradient channel order mismatch at boundary " +
               std::to_string(s + 1) + "->" + std::to_string(s) +
               ": the receiver pops micros in a different order than the "
               "sender pushes them");
    }
  }
  return report;
}

void require_valid_program(const InstructionProgram& program) {
  const ValidationReport report = ProgramValidator().validate(program);
  if (!report.ok()) {
    throw std::invalid_argument("invalid instruction program:\n" +
                                report.to_string());
  }
}

std::string op_signature(const Instruction& instr) {
  std::ostringstream out;
  switch (instr.kind) {
    case InstrKind::kLoadMicroBatch:
      out << "load b" << instr.backbone << " m" << instr.micro;
      break;
    case InstrKind::kForward:
      out << "fwd b" << instr.backbone << " s" << instr.stage << " m"
          << instr.micro;
      break;
    case InstrKind::kBackward:
      out << "bwd b" << instr.backbone << " s" << instr.stage << " m"
          << instr.micro;
      break;
    case InstrKind::kFrozenForward:
      out << "frozen c" << instr.component << " l" << instr.layer_begin
          << ":" << instr.layer_end;
      break;
    case InstrKind::kOptimizerStep:
      out << "opt b" << instr.backbone << " s" << instr.stage;
      break;
    default:
      out << to_string(instr.kind);
      break;
  }
  return out.str();
}

std::vector<std::vector<std::string>> occupancy_trace(
    const InstructionProgram& program, int iterations) {
  DPIPE_REQUIRE(iterations >= 1, "need at least one iteration");
  const auto occupies = [](InstrKind kind) {
    return kind == InstrKind::kLoadMicroBatch ||
           kind == InstrKind::kForward || kind == InstrKind::kBackward ||
           kind == InstrKind::kFrozenForward ||
           kind == InstrKind::kOptimizerStep;
  };
  std::vector<std::vector<std::string>> trace(program.per_device.size());
  for (std::size_t dev = 0; dev < program.per_device.size(); ++dev) {
    for (const Instruction& i : program.preamble[dev]) {
      trace[dev].push_back(op_signature(i));
    }
    for (int k = 0; k < iterations; ++k) {
      for (const Instruction& i : program.per_device[dev]) {
        if (occupies(i.kind)) {
          trace[dev].push_back(op_signature(i));
        }
      }
    }
  }
  return trace;
}

}  // namespace dpipe
