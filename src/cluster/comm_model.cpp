#include "cluster/comm_model.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace dpipe {

CommModel::CommModel(ClusterSpec cluster) : cluster_(std::move(cluster)) {
  validate(cluster_);
}

LinkSpec CommModel::p2p_link(int src_rank, int dst_rank) const {
  return cluster_.same_machine(src_rank, dst_rank) ? cluster_.intra
                                                   : cluster_.inter;
}

double CommModel::p2p_ms(double size_mb, int src_rank, int dst_rank) const {
  require(size_mb >= 0.0, "size must be non-negative");
  if (src_rank == dst_rank) {
    return 0.0;
  }
  const LinkSpec link = p2p_link(src_rank, dst_rank);
  return transfer_ms(size_mb, link.bandwidth_gbps) + link.latency_ms;
}

double CommModel::p2p_ms(double size_mb, int src_rank, int dst_rank,
                         double depart_ms, const fault::FaultModel& faults,
                         std::uint64_t msg_key,
                         fault::FaultStats* stats) const {
  return p2p_ms(size_mb, src_rank, dst_rank) +
         faults.link_penalty_ms(src_rank, dst_rank, depart_ms, msg_key,
                                stats);
}

LinkSpec CommModel::group_link(const std::vector<int>& group) const {
  require(!group.empty(), "communication group must be non-empty");
  bool spans_machines = false;
  for (const int rank : group) {
    if (!cluster_.same_machine(rank, group.front())) {
      spans_machines = true;
      break;
    }
  }
  return spans_machines ? cluster_.inter : cluster_.intra;
}

double CommModel::allreduce_ms(double size_mb,
                               const std::vector<int>& group) const {
  require(size_mb >= 0.0, "size must be non-negative");
  const auto n = static_cast<double>(group.size());
  if (group.size() <= 1 || size_mb == 0.0) {
    return 0.0;
  }
  // Count machines spanned and the (max) ranks per machine.
  std::vector<int> per_machine(cluster_.num_machines, 0);
  int machines = 0;
  int max_per_machine = 0;
  for (const int rank : group) {
    const int m = cluster_.machine_of(rank);
    if (per_machine[m]++ == 0) {
      ++machines;
    }
    max_per_machine = std::max(max_per_machine, per_machine[m]);
  }
  if (machines == 1) {
    // Flat ring on NVSwitch: 2(n-1) steps moving size/n each.
    const double volume = 2.0 * (n - 1.0) / n * size_mb;
    return transfer_ms(volume, cluster_.intra.bandwidth_gbps) +
           2.0 * (n - 1.0) * cluster_.intra.latency_ms;
  }
  // Hierarchical (NCCL-style): intra-node reduce-scatter, inter-node ring
  // allreduce on per-rank chunks, intra-node allgather.
  const double g = static_cast<double>(max_per_machine);
  const double m = static_cast<double>(machines);
  const double intra_phase =
      (g - 1.0) / g * size_mb / cluster_.intra.bandwidth_gbps +
      (g - 1.0) * cluster_.intra.latency_ms;
  const double chunk_mb = size_mb / g;
  const double inter_phase =
      2.0 * (m - 1.0) / m * chunk_mb / cluster_.inter.bandwidth_gbps +
      2.0 * (m - 1.0) * cluster_.inter.latency_ms;
  return 2.0 * intra_phase + inter_phase;
}

double CommModel::allreduce_ms(double size_mb, const std::vector<int>& group,
                               double when_ms,
                               const fault::FaultModel& faults,
                               std::uint64_t msg_key,
                               fault::FaultStats* stats) const {
  return allreduce_ms(size_mb, group) +
         faults.collective_penalty_ms(group, when_ms, msg_key, stats);
}

double CommModel::allgather_ms(double size_mb,
                               const std::vector<int>& group) const {
  require(size_mb >= 0.0, "size must be non-negative");
  const auto n = static_cast<double>(group.size());
  if (group.size() <= 1 || size_mb == 0.0) {
    return 0.0;
  }
  const LinkSpec link = group_link(group);
  const double volume = (n - 1.0) / n * size_mb;
  return transfer_ms(volume, link.bandwidth_gbps) +
         (n - 1.0) * link.latency_ms;
}

double CommModel::reduce_scatter_ms(double size_mb,
                                    const std::vector<int>& group) const {
  // Same ring traffic pattern as allgather.
  return allgather_ms(size_mb, group);
}

double CommModel::broadcast_ms(double size_mb,
                               const std::vector<int>& group) const {
  require(size_mb >= 0.0, "size must be non-negative");
  if (group.size() <= 1 || size_mb == 0.0) {
    return 0.0;
  }
  const LinkSpec link = group_link(group);
  const double hops = std::ceil(std::log2(static_cast<double>(group.size())));
  return transfer_ms(size_mb, link.bandwidth_gbps) + hops * link.latency_ms;
}

}  // namespace dpipe
