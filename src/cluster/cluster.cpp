#include "cluster/cluster.h"

namespace dpipe {

ClusterSpec make_p4de_cluster(int num_machines) {
  require(num_machines >= 1, "need at least one machine");
  ClusterSpec cluster;
  cluster.num_machines = num_machines;
  cluster.devices_per_machine = 8;
  validate(cluster);
  return cluster;
}

void validate(const ClusterSpec& cluster) {
  require(cluster.num_machines >= 1, "num_machines must be >= 1");
  require(cluster.devices_per_machine >= 1,
          "devices_per_machine must be >= 1");
  require(cluster.device.peak_tflops > 0.0, "peak_tflops must be positive");
  require(cluster.device.memory_gb > 0.0, "memory_gb must be positive");
  require(cluster.intra.bandwidth_gbps > 0.0 &&
              cluster.inter.bandwidth_gbps > 0.0,
          "link bandwidth must be positive");
  require(cluster.intra.latency_ms >= 0.0 && cluster.inter.latency_ms >= 0.0,
          "link latency must be non-negative");
}

}  // namespace dpipe
