#include "cluster/cluster.h"

#include <istream>
#include <ostream>

namespace dpipe {

ClusterSpec make_p4de_cluster(int num_machines) {
  require(num_machines >= 1, "need at least one machine");
  ClusterSpec cluster;
  cluster.num_machines = num_machines;
  cluster.devices_per_machine = 8;
  validate(cluster);
  return cluster;
}

void validate(const ClusterSpec& cluster) {
  require(cluster.num_machines >= 1, "num_machines must be >= 1");
  require(cluster.devices_per_machine >= 1,
          "devices_per_machine must be >= 1");
  require(cluster.device.peak_tflops > 0.0, "peak_tflops must be positive");
  require(cluster.device.memory_gb > 0.0, "memory_gb must be positive");
  require(cluster.intra.bandwidth_gbps > 0.0 &&
              cluster.inter.bandwidth_gbps > 0.0,
          "link bandwidth must be positive");
  require(cluster.intra.latency_ms >= 0.0 && cluster.inter.latency_ms >= 0.0,
          "link latency must be non-negative");
}

void write_canonical(std::ostream& out, const ClusterSpec& cluster) {
  const auto flags = out.flags();
  const auto precision = out.precision(17);
  out << "dpipe-cluster v1\n";
  out << "shape " << cluster.num_machines << ' '
      << cluster.devices_per_machine << '\n';
  out << "device " << cluster.device.peak_tflops << ' '
      << cluster.device.memory_gb << ' ' << cluster.device.mem_bw_gbps
      << " name=" << cluster.device.name << '\n';
  out << "intra " << cluster.intra.bandwidth_gbps << ' '
      << cluster.intra.latency_ms << '\n';
  out << "inter " << cluster.inter.bandwidth_gbps << ' '
      << cluster.inter.latency_ms << '\n';
  out.precision(precision);
  out.flags(flags);
}

ClusterSpec read_canonical_cluster(std::istream& in) {
  std::string line;
  while (std::getline(in, line) && line.empty()) {
  }
  require(line == "dpipe-cluster v1", "not a dpipe-cluster v1 block");
  ClusterSpec cluster;
  std::string keyword;
  require(static_cast<bool>(in >> keyword) && keyword == "shape",
          "expected shape line");
  require(static_cast<bool>(in >> cluster.num_machines >>
                            cluster.devices_per_machine),
          "malformed shape line");
  require(static_cast<bool>(in >> keyword) && keyword == "device",
          "expected device line");
  require(static_cast<bool>(in >> cluster.device.peak_tflops >>
                            cluster.device.memory_gb >>
                            cluster.device.mem_bw_gbps),
          "malformed device line");
  std::string name_token;
  require(static_cast<bool>(in >> name_token) && name_token.size() >= 5 &&
              name_token.compare(0, 5, "name=") == 0,
          "expected device name= field");
  std::string rest;
  std::getline(in, rest);
  cluster.device.name = name_token.substr(5) + rest;
  require(static_cast<bool>(in >> keyword) && keyword == "intra",
          "expected intra line");
  require(static_cast<bool>(in >> cluster.intra.bandwidth_gbps >>
                            cluster.intra.latency_ms),
          "malformed intra line");
  require(static_cast<bool>(in >> keyword) && keyword == "inter",
          "expected inter line");
  require(static_cast<bool>(in >> cluster.inter.bandwidth_gbps >>
                            cluster.inter.latency_ms),
          "malformed inter line");
  std::getline(in, line);  // Consume the trailing newline.
  validate(cluster);
  return cluster;
}

}  // namespace dpipe
