#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "fault/fault.h"

namespace dpipe {

/// Analytic communication cost model over a ClusterSpec.
///
/// All sizes in MB, all times in ms (see common/units.h). Collectives use
/// standard ring algorithms; the attainable bandwidth of a group is the
/// slowest link any ring edge crosses (inter-node EFA when the group spans
/// machines, NVSwitch otherwise).
class CommModel {
 public:
  explicit CommModel(ClusterSpec cluster);

  /// Point-to-point transfer of `size_mb` between two ranks.
  [[nodiscard]] double p2p_ms(double size_mb, int src_rank,
                              int dst_rank) const;

  /// Fault-aware point-to-point: the healthy transfer time plus any
  /// deterministic retry/backoff penalty for a message departing at
  /// `depart_ms` under `faults`. `msg_key` identifies the message for
  /// reproducible retry draws; `stats` (optional) accumulates accounting.
  [[nodiscard]] double p2p_ms(double size_mb, int src_rank, int dst_rank,
                              double depart_ms,
                              const fault::FaultModel& faults,
                              std::uint64_t msg_key,
                              fault::FaultStats* stats) const;

  /// Ring allreduce of `size_mb` (per-rank payload) over `group` ranks.
  [[nodiscard]] double allreduce_ms(double size_mb,
                                    const std::vector<int>& group) const;

  /// Fault-aware allreduce: healthy ring time plus the worst adjacent-edge
  /// retry penalty at issue time `when_ms`.
  [[nodiscard]] double allreduce_ms(double size_mb,
                                    const std::vector<int>& group,
                                    double when_ms,
                                    const fault::FaultModel& faults,
                                    std::uint64_t msg_key,
                                    fault::FaultStats* stats) const;

  /// Ring allgather: each rank contributes size_mb / n, gathers size_mb.
  [[nodiscard]] double allgather_ms(double size_mb,
                                    const std::vector<int>& group) const;

  /// Ring reduce-scatter of `size_mb` total payload over `group`.
  [[nodiscard]] double reduce_scatter_ms(double size_mb,
                                         const std::vector<int>& group) const;

  /// Broadcast of `size_mb` from one rank to the group (tree).
  [[nodiscard]] double broadcast_ms(double size_mb,
                                    const std::vector<int>& group) const;

  /// Effective ring bandwidth (GB/s) and per-step latency (ms) of a group.
  [[nodiscard]] LinkSpec group_link(const std::vector<int>& group) const;

  /// The point-to-point link between two specific ranks.
  [[nodiscard]] LinkSpec p2p_link(int src_rank, int dst_rank) const;

  [[nodiscard]] const ClusterSpec& cluster() const { return cluster_; }

 private:
  ClusterSpec cluster_;
};

}  // namespace dpipe
