#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.h"

namespace dpipe {

/// A single accelerator. Defaults model an NVIDIA A100-80GB (p4de).
struct DeviceSpec {
  std::string name = "A100-80GB";
  double peak_tflops = 312.0;   ///< Dense fp16 tensor-core peak.
  double memory_gb = 80.0;      ///< HBM capacity.
  double mem_bw_gbps = 2039.0;  ///< HBM bandwidth, GB/s.
};

/// An interconnect link class (intra-node NVSwitch or inter-node EFA).
struct LinkSpec {
  double bandwidth_gbps = 0.0;  ///< Per-device attainable bandwidth, GB/s.
  double latency_ms = 0.0;      ///< One-way message latency.
};

/// A homogeneous cluster: `num_machines` hosts with `devices_per_machine`
/// identical devices each. Devices are globally ranked
/// [0, world_size()): rank r lives on machine r / devices_per_machine.
struct ClusterSpec {
  int num_machines = 1;
  int devices_per_machine = 8;
  DeviceSpec device;
  LinkSpec intra{600.0, 0.003};  ///< NVSwitch: 600 GB/s, ~3 us.
  /// EFA 400 Gb/s per machine shared by 8 GPUs = 6.25 GB/s theoretical per
  /// device; NCCL attains roughly a third of that under collective load
  /// (protocol overhead, NIC sharing, stragglers), so the model uses the
  /// effective value.
  LinkSpec inter{2.0, 0.015};

  [[nodiscard]] int world_size() const {
    return num_machines * devices_per_machine;
  }
  [[nodiscard]] int machine_of(int rank) const {
    require(rank >= 0 && rank < world_size(), "rank out of range");
    return rank / devices_per_machine;
  }
  [[nodiscard]] bool same_machine(int rank_a, int rank_b) const {
    return machine_of(rank_a) == machine_of(rank_b);
  }
};

/// Convenience factory for the paper's test-bed shape: N p4de.24xlarge
/// machines (8x A100-80GB, NVSwitch 600 GB/s, EFA 400 Gb/s).
[[nodiscard]] ClusterSpec make_p4de_cluster(int num_machines);

/// Validates internal consistency; throws std::invalid_argument on bad specs.
void validate(const ClusterSpec& cluster);

/// Canonical text form of the cluster topology: every field, fixed order,
/// doubles at precision 17. Equal specs produce equal bytes — the plan
/// service fingerprints this to key plan-cache entries and to invalidate
/// persisted plans when the cluster changes.
void write_canonical(std::ostream& out, const ClusterSpec& cluster);

/// Parses write_canonical output (byte-identity on re-serialization).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] ClusterSpec read_canonical_cluster(std::istream& in);

}  // namespace dpipe
