#include "engine/engine.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/timeline.h"
#include "common/units.h"
#include "core/instr/validate.h"

namespace dpipe {

namespace {

/// Channel key for matching a send with its receive.
using ChannelKey = std::tuple<int /*src*/, int /*dst*/, int /*backbone*/,
                              int /*stage*/, int /*micro*/, bool /*grad*/,
                              int /*round*/>;
/// Collective key.
using CollectiveKey = std::tuple<int /*backbone*/, int /*stage*/,
                                 int /*round*/>;

struct RtInstr {
  Instruction instr;
  int round = 0;
};

struct Collective {
  int expected = 0;
  int issued = 0;
  double last_issue_ms = 0.0;
  double size_mb = 0.0;
  std::vector<int> participants;  ///< Chain positions.
  /// Lazily computed link-fault retry penalty (< 0 = not yet computed;
  /// stays negative on fault-free runs so it contributes nothing).
  double fault_penalty_ms = -1.0;
};

/// Stable identity for a message or collective, used to seed deterministic
/// link-fault retry draws.
std::uint64_t fault_msg_key(int backbone, int stage, int micro, int round,
                            bool grad) {
  return (static_cast<std::uint64_t>(backbone + 1) << 44) ^
         (static_cast<std::uint64_t>(stage + 1) << 30) ^
         (static_cast<std::uint64_t>(micro + 1) << 14) ^
         (static_cast<std::uint64_t>(round + 1) << 1) ^
         (grad ? 1ull : 0ull);
}

}  // namespace

ExecutionEngine::ExecutionEngine(const ProfileDb& db, const CommModel& comm)
    : db_(&db), comm_(&comm) {}

EngineResult ExecutionEngine::run(const InstructionProgram& program,
                                  const EngineOptions& opts) const {
  DPIPE_REQUIRE(opts.iterations >= 2,
                "need at least 2 iterations (steady state starts at 1)");
  DPIPE_REQUIRE(opts.group_batch > 0.0, "group batch must be positive");
  DPIPE_REQUIRE(program.group_size >= 1 &&
                    static_cast<int>(program.per_device.size()) ==
                        program.group_size,
                "program/device shape mismatch");
  require_valid_program(program);  // Shared front-end/back-end contract.
  DPIPE_REQUIRE(opts.data_parallel_degree * program.group_size <=
                    comm_->cluster().world_size(),
                "cluster too small for group_size x data_parallel_degree");
  const int R = opts.iterations;
  const int D = program.group_size;
  // Fault injection: `faulty` gates every adjustment below so an empty plan
  // leaves the run bit-identical to pre-fault behaviour.
  const bool faulty = !opts.faults.empty();
  if (faulty) {
    fault::validate(opts.faults, D);
  }
  const fault::FaultModel faults(opts.faults);
  fault::FaultStats fstats;
  const ModelDesc& model = db_->model();
  const AnalyticCostModel actual(
      comm_->cluster().device,
      NoiseSource(opts.actual_noise_seed, opts.noise_amplitude));

  // Unroll R rounds per device.
  std::vector<std::vector<RtInstr>> streams(D);
  for (int dev = 0; dev < D; ++dev) {
    for (int k = 0; k < R; ++k) {
      if (k == 0) {
        for (const Instruction& i : program.preamble[dev]) {
          streams[dev].push_back({i, 0});
        }
      }
      for (const Instruction& i : program.per_device[dev]) {
        streams[dev].push_back({i, k});
      }
    }
  }

  // Pre-scan: collective participants and frozen-fence counts.
  std::map<CollectiveKey, Collective> collectives;
  // data_round -> number of frozen ops producing that round's inputs.
  std::map<int, int> frozen_expected;
  for (int dev = 0; dev < D; ++dev) {
    bool in_preamble = true;
    std::size_t preamble_size = program.preamble[dev].size();
    for (std::size_t idx = 0; idx < streams[dev].size(); ++idx) {
      const RtInstr& ri = streams[dev][idx];
      in_preamble = ri.round == 0 && idx < preamble_size;
      if (ri.instr.kind == InstrKind::kAllReduceGrads) {
        Collective& c = collectives[{ri.instr.backbone, ri.instr.stage,
                                     ri.round}];
        ++c.expected;
        c.size_mb = ri.instr.size_mb;
        c.participants.push_back(dev);
      } else if (ri.instr.kind == InstrKind::kFrozenForward) {
        // Preamble prepares round 0; steady frozen ops in round k prepare
        // round k+1 (cross-iteration pipelining, §3.2).
        const int data_round = in_preamble ? 0 : ri.round + 1;
        ++frozen_expected[data_round];
      }
    }
  }
  std::map<int, int> frozen_done_count;
  std::map<int, double> frozen_ready_ms;

  const auto collective_duration = [&](Collective& c, std::uint64_t key) {
    std::vector<int> group;
    for (int g = 0; g < opts.data_parallel_degree; ++g) {
      for (const int dev : c.participants) {
        group.push_back(dev + g * D);
      }
    }
    // Link faults are declared over chain positions; the retry penalty is
    // computed (and accounted) once per collective, then cached.
    if (faulty && c.fault_penalty_ms < 0.0) {
      c.fault_penalty_ms = faults.collective_penalty_ms(
          c.participants, c.last_issue_ms, key, &fstats);
    }
    return comm_->allreduce_ms(c.size_mb, group) +
           std::max(0.0, c.fault_penalty_ms);
  };

  // Self-conditioning factor on backbone forwards: the expectation (1+p)
  // by default (comparable to the planner's model, §4.3), or a sampled
  // per-iteration Bernoulli coin — active iterations pay the full 2x extra
  // pass, inactive ones 1x.
  const double sc_prob = model.self_conditioning ? model.self_cond_prob : 0.0;
  const NoiseSource sc_coin(opts.actual_noise_seed ^ 0x5Cull, 0.999);
  const auto self_cond_factor = [&](int round) -> double {
    if (sc_prob == 0.0) {
      return 1.0;
    }
    if (!opts.sample_self_conditioning) {
      return 1.0 + sc_prob;
    }
    // Map the noise multiplier (uniform on [0.001, 1.999]) to a coin.
    const double unit =
        (sc_coin.multiplier(static_cast<std::uint64_t>(round)) - 1.0) / 2.0 +
        0.5;
    return unit < sc_prob ? 2.0 : 1.0;
  };

  const auto compute_duration = [&](const Instruction& i, bool backward,
                                    int round) -> double {
    double total = 0.0;
    for (int l = i.layer_begin; l < i.layer_end; ++l) {
      const LayerDesc& layer = model.components[i.component].layers[l];
      total += backward ? actual.bwd_ms(layer, i.samples)
                        : actual.fwd_ms(layer, i.samples);
    }
    if (i.kind == InstrKind::kForward) {
      total *= self_cond_factor(round);
    }
    return total;
  };

  std::vector<double> clock(D, 0.0);
  std::vector<std::size_t> head(D, 0);
  std::vector<DeviceTimeline> result_timelines(
      opts.record_timelines ? D : 0);
  std::map<ChannelKey, double> sends;  ///< Key -> sender enqueue time.
  std::vector<std::vector<std::vector<Span>>> busy(
      D, std::vector<std::vector<Span>>(R));
  std::vector<double> round_end(R, 0.0);

  std::size_t remaining = 0;
  for (const auto& s : streams) {
    remaining += s.size();
  }

  // Fixed-point sweep: each pass advances every device as far as possible.
  while (remaining > 0) {
    bool progress = false;
    for (int dev = 0; dev < D; ++dev) {
      while (head[dev] < streams[dev].size()) {
        const RtInstr& ri = streams[dev][head[dev]];
        const Instruction& i = ri.instr;
        const int k = ri.round;
        double start = clock[dev];
        double duration = 0.0;
        bool executable = true;
        bool occupies_device = true;

        switch (i.kind) {
          case InstrKind::kLoadMicroBatch: {
            const auto expected_it = frozen_expected.find(k);
            if (expected_it != frozen_expected.end() &&
                frozen_done_count[k] < expected_it->second) {
              executable = false;
              break;
            }
            const auto ready_it = frozen_ready_ms.find(k);
            if (ready_it != frozen_ready_ms.end()) {
              start = std::max(start, ready_it->second);
            }
            duration = opts.load_ms;
            break;
          }
          case InstrKind::kForward:
            duration = compute_duration(i, false, k);
            break;
          case InstrKind::kBackward:
            duration = compute_duration(i, true, k);
            break;
          case InstrKind::kFrozenForward:
            duration = compute_duration(i, false, k);
            break;
          case InstrKind::kSendActivation:
          case InstrKind::kSendGradient: {
            const bool grad = i.kind == InstrKind::kSendGradient;
            // Channels are keyed by the *receiver's* stage: activations go
            // to stage+1, activation gradients to stage-1.
            const int receiver_stage = i.stage + (grad ? -1 : 1);
            sends[{dev, i.peer, i.backbone, receiver_stage, i.micro, grad,
                   k}] = clock[dev];
            duration = 0.0;
            occupies_device = false;
            break;
          }
          case InstrKind::kRecvActivation:
          case InstrKind::kRecvGradient: {
            const bool grad = i.kind == InstrKind::kRecvGradient;
            // The matching send is emitted with the *sender's* stage id;
            // match on the boundary instead: activation sends from stage
            // s-1 to s carry micro m; we key channels by the receiver-side
            // (stage, micro) to keep send/recv symmetric. See send above.
            const ChannelKey key{i.peer, dev, i.backbone, i.stage, i.micro,
                                 grad, k};
            const auto it = sends.find(key);
            if (it == sends.end()) {
              executable = false;
              break;
            }
            const double arrival =
                faulty ? it->second +
                             comm_->p2p_ms(i.size_mb, i.peer, dev, it->second,
                                           faults,
                                           fault_msg_key(i.backbone, i.stage,
                                                         i.micro, k, grad),
                                           &fstats)
                       : it->second + comm_->p2p_ms(i.size_mb, i.peer, dev);
            start = std::max(clock[dev], arrival);
            duration = 0.0;
            occupies_device = false;
            break;
          }
          case InstrKind::kAllReduceGrads: {
            Collective& c = collectives.at({i.backbone, i.stage, k});
            ++c.issued;
            c.last_issue_ms = std::max(c.last_issue_ms, clock[dev]);
            duration = 0.0;
            occupies_device = false;
            break;
          }
          case InstrKind::kOptimizerStep: {
            Collective& c = collectives.at({i.backbone, i.stage, k});
            if (c.issued < c.expected) {
              executable = false;
              break;
            }
            start = std::max(
                start, c.last_issue_ms +
                           collective_duration(
                               c, fault_msg_key(i.backbone, i.stage, -1, k,
                                                true)));
            // Adam update: read/modify/write fp32 states, HBM-bound.
            duration = transfer_ms(3.0 * i.size_mb,
                                   comm_->cluster().device.mem_bw_gbps);
            break;
          }
        }
        if (!executable) {
          break;
        }
        if (faulty && occupies_device && duration > 0.0) {
          const double factor = faults.straggler_factor(dev, start);
          if (factor > 1.0) {
            fstats.straggler_delay_ms += duration * (factor - 1.0);
            duration *= factor;
          }
        }
        const double end = start + duration;
        clock[dev] = std::max(clock[dev], end);
        if (occupies_device && duration > 0.0) {
          busy[dev][k].push_back({start, end});
          if (opts.record_timelines) {
            PipelineOp measured;
            switch (i.kind) {
              case InstrKind::kLoadMicroBatch:
                measured.kind = OpKind::kLoad;
                break;
              case InstrKind::kBackward:
                measured.kind = OpKind::kBackward;
                break;
              case InstrKind::kFrozenForward:
                measured.kind = OpKind::kFrozenForward;
                break;
              case InstrKind::kOptimizerStep:
                measured.kind = OpKind::kOptimizer;
                break;
              default:
                measured.kind = OpKind::kForward;
                break;
            }
            measured.backbone = i.backbone;
            measured.stage = i.stage;
            measured.micro = i.micro;
            measured.component = i.component;
            measured.layer = i.layer_begin;
            measured.samples = i.samples;
            measured.start_ms = start;
            measured.end_ms = end;
            result_timelines[dev].ops.push_back(measured);
          }
        }
        round_end[k] = std::max(round_end[k], end);
        if (i.kind == InstrKind::kFrozenForward) {
          const bool in_preamble =
              k == 0 && head[dev] < program.preamble[dev].size();
          const int data_round = in_preamble ? 0 : k + 1;
          ++frozen_done_count[data_round];
          frozen_ready_ms[data_round] =
              std::max(frozen_ready_ms[data_round], end);
        }
        ++head[dev];
        --remaining;
        progress = true;
      }
    }
    DPIPE_ENSURE(progress || remaining == 0,
                 "execution engine deadlocked: unmatched receive or fence");
  }

  // Device crashes: modeled post-hoc as global stalls. A synchronous
  // pipeline cannot advance past a dead stage, so at each crash the whole
  // group restores from the last iteration-boundary checkpoint (restore_ms)
  // and replays the work lost since it; everything after the crash point
  // shifts by that stall. Stalls are resolved in wall-clock order: each
  // crash's at_ms is mapped back into the unshifted timeline by subtracting
  // the stalls already incurred before it.
  std::vector<std::pair<double, double>> stalls;  ///< (unshifted t, stall).
  if (faulty && !opts.faults.crashes.empty()) {
    std::vector<fault::DeviceCrash> crashes = opts.faults.crashes;
    std::sort(crashes.begin(), crashes.end(),
              [](const fault::DeviceCrash& a, const fault::DeviceCrash& b) {
                return a.at_ms < b.at_ms;
              });
    const double makespan = round_end.back();
    double incurred = 0.0;
    for (const fault::DeviceCrash& crash : crashes) {
      const double t_c = crash.at_ms - incurred;
      if (t_c <= 0.0 || t_c >= makespan) {
        continue;  // The device died outside the simulated window.
      }
      double checkpoint_ms = 0.0;
      for (int k = 0; k < R; ++k) {
        if (round_end[k] <= t_c) {
          checkpoint_ms = std::max(checkpoint_ms, round_end[k]);
        }
      }
      const double stall = crash.restore_ms + (t_c - checkpoint_ms);
      stalls.emplace_back(t_c, stall);
      incurred += stall;
      ++fstats.recoveries;
      fstats.recovery_ms += stall;
    }
    // Total shift for an event ending at unshifted time `t`: ops that end
    // strictly after a crash point move (interrupted work is replayed after
    // recovery); ops already finished stay put.
    const auto shift_for = [&stalls](double t) {
      double s = 0.0;
      for (const auto& [tc, stall] : stalls) {
        if (t > tc) {
          s += stall;
        }
      }
      return s;
    };
    for (int dev = 0; dev < D; ++dev) {
      for (int k = 0; k < R; ++k) {
        for (Span& s : busy[dev][k]) {
          const double shift = shift_for(s.end);
          s.start += shift;
          s.end += shift;
        }
      }
    }
    for (double& re : round_end) {
      re += shift_for(re);
    }
    if (opts.record_timelines) {
      for (DeviceTimeline& device : result_timelines) {
        for (PipelineOp& op : device.ops) {
          const double shift = shift_for(op.end_ms);
          op.start_ms += shift;
          op.end_ms += shift;
        }
      }
      for (auto& [key, c] : collectives) {
        c.last_issue_ms += shift_for(c.last_issue_ms);
      }
    }
  }

  // Iteration statistics. Rounds must be non-decreasing in end time.
  EngineResult result;
  double window_start = 0.0;
  for (int k = 0; k < R; ++k) {
    IterationStats stats;
    stats.start_ms = window_start;
    stats.end_ms = std::max(round_end[k], window_start);
    const double window = stats.end_ms - stats.start_ms;
    if (window > 0.0) {
      double busy_total = 0.0;
      for (int dev = 0; dev < D; ++dev) {
        // Clip this round's busy spans to the window; spans from adjacent
        // rounds overlapping the window edges are attributed to their own
        // round, which keeps the sum consistent across rounds.
        for (const Span& s : busy[dev][k]) {
          busy_total += std::max(0.0, std::min(s.end, stats.end_ms) -
                                          std::max(s.start, stats.start_ms));
        }
      }
      stats.bubble_ratio =
          1.0 - busy_total / (window * static_cast<double>(D));
    }
    window_start = stats.end_ms;
    result.iterations.push_back(stats);
  }
  double steady_sum = 0.0;
  double steady_bubble = 0.0;
  for (int k = 1; k < R; ++k) {
    steady_sum += result.iterations[k].duration_ms();
    steady_bubble += result.iterations[k].bubble_ratio;
  }
  result.steady_iteration_ms = steady_sum / (R - 1);
  result.steady_bubble_ratio = steady_bubble / (R - 1);
  result.samples_per_second =
      opts.group_batch * opts.data_parallel_degree /
      ms_to_seconds(result.steady_iteration_ms);
  if (opts.record_timelines) {
    result.timelines.group_size = D;
    result.timelines.devices = std::move(result_timelines);
    result.timelines.makespan_ms = round_end.back();
    result.timelines.compute_makespan_ms = round_end.back();
    // Resolved collectives as link ops (duration known once all issued).
    for (auto& [key, c] : collectives) {
      PipelineOp sync;
      sync.kind = OpKind::kGradSync;
      sync.backbone = std::get<0>(key);
      sync.stage = std::get<1>(key);
      sync.start_ms = c.last_issue_ms;
      sync.end_ms =
          c.last_issue_ms +
          collective_duration(c, fault_msg_key(std::get<0>(key),
                                               std::get<1>(key), -1,
                                               std::get<2>(key), true));
      result.timelines.link_ops.push_back(sync);
    }
  }
  if (faulty) {
    // Effective bubble inflation: re-run the same program fault-free (the
    // engine is deterministic, so this is an exact counterfactual) and diff
    // the steady bubble ratios.
    EngineOptions clean = opts;
    clean.faults = fault::FaultPlan{};
    clean.record_timelines = false;
    const EngineResult baseline = run(program, clean);
    fstats.bubble_inflation =
        result.steady_bubble_ratio - baseline.steady_bubble_ratio;
  }
  result.fault_stats = fstats;
  return result;
}

}  // namespace dpipe
