#include "engine/memory.h"

#include <algorithm>

namespace dpipe {

namespace {

constexpr double kMbPerGb = 1024.0;

double frozen_params_gb(const ModelDesc& model) {
  double mb = 0.0;
  for (const ComponentDesc& c : model.components) {
    if (!c.trainable) {
      mb += c.total_param_mb();
    }
  }
  return mb / kMbPerGb;
}

double trainable_params_mb(const ModelDesc& model) {
  double mb = 0.0;
  for (const ComponentDesc& c : model.components) {
    if (c.trainable) {
      mb += c.total_param_mb();
    }
  }
  return mb;
}

double trainable_act_mb_per_sample(const ModelDesc& model) {
  double mb = 0.0;
  for (const ComponentDesc& c : model.components) {
    if (!c.trainable) {
      continue;
    }
    for (const LayerDesc& l : c.layers) {
      mb += l.act_mb;
    }
  }
  return mb;
}

}  // namespace

MemoryReport estimate_pipeline_memory(const ProfileDb& db,
                                      const Schedule& schedule,
                                      const PartitionOptions& opts,
                                      bool gpipe_style) {
  const ModelDesc& model = db.model();
  MemoryReport report;
  report.devices.resize(schedule.group_size);
  const double frozen_gb = frozen_params_gb(model);
  for (DeviceMemory& device : report.devices) {
    device.frozen_gb = frozen_gb;
  }
  for (std::size_t b = 0; b < schedule.backbone_stages.size(); ++b) {
    const int component = model.backbone_ids[b];
    const std::vector<StagePlan>& stages = schedule.backbone_stages[b];
    const int S = static_cast<int>(stages.size());
    for (int s = 0; s < S; ++s) {
      const StagePlan& stage = stages[s];
      DPIPE_ENSURE(
          *std::max_element(stage.device_ranks.begin(),
                            stage.device_ranks.end()) < schedule.group_size,
          "stage device ranks must be chain positions of the group");
      const double params_mb =
          db.param_range_mb(component, stage.layer_begin, stage.layer_end);
      const double act_mb_per_sample =
          db.act_range_mb(component, stage.layer_begin, stage.layer_end);
      const double local_micro = opts.microbatch_size / stage.replicas;
      const int in_flight =
          gpipe_style ? opts.num_microbatches
                      : std::min(opts.num_microbatches, S - s);
      for (const int position : stage.device_ranks) {
        DeviceMemory& device = report.devices[position];
        device.params_gb += params_mb / kMbPerGb;
        // Frozen-in-pipeline layers (grad_mb = 0) carry no optimizer state.
        device.optimizer_gb +=
            kOptimizerStateMultiplier *
            db.grad_range_mb(component, stage.layer_begin, stage.layer_end) /
            kMbPerGb;
        device.activations_gb +=
            act_mb_per_sample * local_micro * in_flight / kMbPerGb;
      }
    }
  }
  for (const DeviceMemory& device : report.devices) {
    report.peak_gb = std::max(report.peak_gb, device.total_gb());
  }
  return report;
}

MemoryReport estimate_data_parallel_memory(const ProfileDb& db,
                                           double local_batch,
                                           int num_devices) {
  DPIPE_REQUIRE(local_batch >= 0.0, "local batch must be non-negative");
  DPIPE_REQUIRE(num_devices >= 1, "need at least one device");
  const ModelDesc& model = db.model();
  const double params_mb = trainable_params_mb(model);
  DeviceMemory device;
  device.params_gb = params_mb / kMbPerGb;
  device.optimizer_gb = kOptimizerStateMultiplier * params_mb / kMbPerGb;
  device.activations_gb =
      trainable_act_mb_per_sample(model) * local_batch / kMbPerGb;
  device.frozen_gb = frozen_params_gb(model);
  MemoryReport report;
  report.devices.assign(num_devices, device);
  report.peak_gb = device.total_gb();
  return report;
}

MemoryReport estimate_zero3_memory(const ProfileDb& db, double local_batch,
                                   int num_devices) {
  DPIPE_REQUIRE(num_devices >= 1, "need at least one device");
  const ModelDesc& model = db.model();
  const double params_mb = trainable_params_mb(model);
  DeviceMemory device;
  // Weights, grads and optimizer states sharded N ways (ZeRO stage 3);
  // a working buffer of the largest layer's weights stays unsharded.
  double largest_layer_mb = 0.0;
  for (const ComponentDesc& c : model.components) {
    if (!c.trainable) {
      continue;
    }
    for (const LayerDesc& l : c.layers) {
      largest_layer_mb = std::max(largest_layer_mb, l.param_mb);
    }
  }
  device.params_gb =
      (params_mb / num_devices + largest_layer_mb) / kMbPerGb;
  device.optimizer_gb =
      kOptimizerStateMultiplier * params_mb / num_devices / kMbPerGb;
  device.activations_gb =
      trainable_act_mb_per_sample(model) * local_batch / kMbPerGb;
  device.frozen_gb = frozen_params_gb(model);
  MemoryReport report;
  report.devices.assign(num_devices, device);
  report.peak_gb = device.total_gb();
  return report;
}

double max_feasible_local_batch(const ProfileDb& db, double capacity_gb,
                                const std::vector<double>& candidates,
                                int num_devices, bool zero3) {
  double best = 0.0;
  for (const double batch : candidates) {
    const MemoryReport report =
        zero3 ? estimate_zero3_memory(db, batch, num_devices)
              : estimate_data_parallel_memory(db, batch, num_devices);
    if (report.fits(capacity_gb)) {
      best = std::max(best, batch);
    }
  }
  return best;
}

}  // namespace dpipe
