#pragma once

#include <cstdint>

#include "cluster/comm_model.h"
#include "core/instr/instructions.h"
#include "fault/fault.h"
#include "profiler/cost_model.h"
#include "profiler/profile_db.h"

namespace dpipe {

struct EngineOptions {
  int iterations = 4;  ///< Replay count; iteration 0 includes the preamble.
  int data_parallel_degree = 1;  ///< For throughput scaling (groups run the
                                 ///< same program concurrently).
  double group_batch = 64.0;     ///< Samples per iteration per group.
  /// The "actual" kernel times differ from the profiled ones: separate
  /// noise seed (same amplitude) — the paper's explanation for residual
  /// unfilled bubble time (§6.2).
  std::uint64_t actual_noise_seed = 0xAC7BA1;
  double noise_amplitude = 0.02;
  double load_ms = 0.05;  ///< Fixed micro-batch load cost.
  /// Self-conditioning realism: instead of the planner's expected-value
  /// model (every forward costs (1+p)x), sample the Bernoulli(p) coin per
  /// iteration — active iterations run 2x forwards, inactive 1x. Off by
  /// default so measured time is directly comparable to the plan.
  bool sample_self_conditioning = false;
  double self_cond_prob = 0.5;
  /// Record per-device measured op timelines (EngineResult::timelines) —
  /// a measured counterpart to the planner's Schedule, exportable with
  /// write_chrome_trace for side-by-side inspection.
  bool record_timelines = false;
  /// Fault scenario to inject (stragglers, link faults, device crashes).
  /// An empty plan leaves the fault-free path bit-identical to a run
  /// without one; see fault/fault.h for the event and cost models.
  fault::FaultPlan faults;
};

struct IterationStats {
  double start_ms = 0.0;  ///< End of the previous iteration.
  double end_ms = 0.0;    ///< Completion of this iteration's last op.
  double bubble_ratio = 0.0;  ///< Idle fraction within [start, end].

  [[nodiscard]] double duration_ms() const { return end_ms - start_ms; }
};

struct EngineResult {
  std::vector<IterationStats> iterations;
  double steady_iteration_ms = 0.0;  ///< Mean over iterations >= 1.
  double steady_bubble_ratio = 0.0;  ///< Mean over iterations >= 1.
  double samples_per_second = 0.0;   ///< group_batch x dp / steady time.
  /// Measured device timelines across all replayed iterations (empty
  /// unless EngineOptions::record_timelines). Packaged as a Schedule so
  /// extract_bubbles / write_chrome_trace apply directly.
  Schedule timelines;
  /// Per-fault accounting (all zero when EngineOptions::faults is empty).
  fault::FaultStats fault_stats;
};

/// Discrete-event back-end: replays per-device instruction streams with
/// blocking receives, async sends, async collectives, and a cross-iteration
/// fence between a batch's non-trainable outputs (computed in the previous
/// iteration's bubbles, or the preamble) and its first micro-batch load.
/// Timing comes from an *actual* cost model, independent of the profiled
/// times that drove planning — so plan robustness is genuinely exercised.
class ExecutionEngine {
 public:
  ExecutionEngine(const ProfileDb& db, const CommModel& comm);

  [[nodiscard]] EngineResult run(const InstructionProgram& program,
                                 const EngineOptions& opts) const;

 private:
  const ProfileDb* db_;
  const CommModel* comm_;
};

}  // namespace dpipe
