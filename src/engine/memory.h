#pragma once

#include "core/schedule/schedule.h"
#include "profiler/profile_db.h"

namespace dpipe {

/// Per-device memory breakdown, in GB.
struct DeviceMemory {
  double params_gb = 0.0;      ///< fp16 weights of hosted stage(s).
  double optimizer_gb = 0.0;   ///< fp16 grads + fp32 master/momentum/var.
  double activations_gb = 0.0; ///< Stashed activations of in-flight micros.
  double frozen_gb = 0.0;      ///< Non-trainable component weights.

  [[nodiscard]] double total_gb() const {
    return params_gb + optimizer_gb + activations_gb + frozen_gb;
  }
};

struct MemoryReport {
  std::vector<DeviceMemory> devices;
  double peak_gb = 0.0;

  [[nodiscard]] bool fits(double capacity_gb) const {
    return peak_gb <= capacity_gb;
  }
};

/// Mixed-precision optimizer state per MB of fp16 weights: fp16 gradients
/// (1x) plus fp32 master weights, momentum and variance (3 x 2x) = 7x.
inline constexpr double kOptimizerStateMultiplier = 7.0;

/// Static memory estimate of a pipeline schedule. 1F1B keeps at most
/// (S - stage) micro-batches of activations in flight per stage;
/// GPipe-style scheduling keeps all M (the reason DiffusionPipe sustains
/// larger batches than data parallelism, §6.1). Frozen components reside on
/// every device (they execute data-parallel during bubble filling).
[[nodiscard]] MemoryReport estimate_pipeline_memory(
    const ProfileDb& db, const Schedule& schedule,
    const PartitionOptions& opts, bool gpipe_style = false);

/// Memory of plain data-parallel training at `local_batch` samples per
/// device: the full model replicated everywhere.
[[nodiscard]] MemoryReport estimate_data_parallel_memory(const ProfileDb& db,
                                                         double local_batch,
                                                         int num_devices);

/// ZeRO-3: parameters, gradients and optimizer states sharded over all
/// devices; activations stay local.
[[nodiscard]] MemoryReport estimate_zero3_memory(const ProfileDb& db,
                                                 double local_batch,
                                                 int num_devices);

/// Largest local batch (from `candidates`, ascending) that fits
/// `capacity_gb` under the given estimator; 0 if none fit.
[[nodiscard]] double max_feasible_local_batch(
    const ProfileDb& db, double capacity_gb,
    const std::vector<double>& candidates, int num_devices, bool zero3);

}  // namespace dpipe
