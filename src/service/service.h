#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/partition/stage_cache.h"
#include "service/plan_cache.h"
#include "service/plan_store.h"
#include "service/request.h"

namespace dpipe {

/// Server-side policy. Everything here is result-INVISIBLE: it controls how
/// the service executes cold plans, never what plan a request maps to, so
/// none of it participates in cache identity.
struct PlanServiceOptions {
  /// Directory for the versioned on-disk plan store. Empty = in-memory
  /// only (no persistence, cold start on restart).
  std::string store_dir;
  /// search_threads applied to every cold plan (0 = planner default:
  /// DPIPE_THREADS, else hardware threads).
  int planner_threads = 0;
  /// Adaptive-granularity threshold forwarded to the planner.
  double parallel_work_threshold = 500e3;
  /// Run require_valid_program() on every cold plan before it is cached or
  /// persisted, so the cache can only ever serve validated programs.
  bool validate_programs = true;
};

/// The multi-tenant planning service: accepts concurrent plan requests,
/// answers repeats from a fingerprint-keyed whole-plan cache (single-flight:
/// N concurrent identical cold requests run the planner once), shares one
/// mutex-guarded StageCostStore across tenants so distinct requests still
/// reuse per-combo stage costs, and optionally persists every plan to a
/// PlanStore for warm restart. All public methods are thread-safe.
class PlanService {
 public:
  struct Stats {
    PlanCache::Stats cache;
    StageCostStore::Stats stage_costs;
    std::size_t planner_runs = 0;       ///< Cold plans actually computed.
    std::size_t store_loaded = 0;       ///< Warm-start entries from disk.
    std::size_t store_corrupt_dropped = 0;
  };

  /// Result of an invalidation sweep across the cache and the store.
  struct InvalidationReport {
    std::size_t cache_evicted = 0;
    std::size_t store_removed = 0;
  };

  explicit PlanService(PlanServiceOptions options = {});

  /// Returns the (shared, immutable) plan for `request`. Cache hit: no
  /// planner work at all. Cold: runs the full planner pipeline, validates
  /// the program, caches and persists the result. `cache_hit` (optional)
  /// reports which path this call took. Safe to call from many threads;
  /// identical concurrent requests deduplicate to one planner run.
  [[nodiscard]] std::shared_ptr<const CachedPlan> plan(
      const PlanRequest& request, bool* cache_hit = nullptr);

  /// Plans a batch concurrently on `threads` host threads (0 = one thread
  /// per request, capped by hardware). Order of results matches the input.
  [[nodiscard]] std::vector<std::shared_ptr<const CachedPlan>> plan_all(
      const std::vector<PlanRequest>& requests, int threads = 0);

  /// The cluster changed shape: every cached and persisted plan for its old
  /// fingerprint is stale. Evicts from the cache, deletes from the store,
  /// and clears the stage-cost store (its context keys embed the cluster
  /// bytes, so old entries were already unreachable — this reclaims them).
  InvalidationReport invalidate_cluster(const ClusterSpec& cluster);

  [[nodiscard]] Stats stats() const;

  /// The shared whole-plan cache (exposed for tests and tools).
  [[nodiscard]] PlanCache& cache() { return cache_; }

  /// The shared cross-tenant stage-cost store.
  [[nodiscard]] StageCostStore& stage_costs() { return stage_costs_; }

  [[nodiscard]] const PlanServiceOptions& options() const { return options_; }

 private:
  /// Runs the planner for one cold request and packages the result.
  [[nodiscard]] std::shared_ptr<const CachedPlan> compute_plan(
      const PlanRequest& request, const std::string& request_text);

  PlanServiceOptions options_;
  PlanCache cache_;
  StageCostStore stage_costs_;
  std::optional<PlanStore> store_;
  std::mutex store_mutex_;  ///< Serializes store_ mutation (put/invalidate).
  mutable std::mutex stats_mutex_;
  std::size_t planner_runs_ = 0;
  std::size_t store_loaded_ = 0;
  std::size_t store_corrupt_dropped_ = 0;
};

}  // namespace dpipe
