#include "service/plan_cache.h"

namespace dpipe {

std::shared_ptr<const CachedPlan> PlanCache::get_or_compute(
    const std::string& request_text, const ComputeFn& compute, bool* hit) {
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = slots_.find(request_text);
    if (it != slots_.end()) {
      slot = it->second;
      if (slot->ready) {
        if (slot->error != nullptr) {
          // Unreachable in practice (failed slots are erased), but keeps
          // the invariant local: a ready slot either has a value or throws.
          std::rethrow_exception(slot->error);
        }
        ++stats_.hits;
        if (hit != nullptr) {
          *hit = true;
        }
        return slot->value;
      }
      // Single-flight join: another caller is computing this exact
      // request. Wait for it instead of planning again.
      ++stats_.hits;
      ++stats_.single_flight_joins;
      ready_cv_.wait(lock, [&] { return slot->ready; });
      if (slot->error != nullptr) {
        std::rethrow_exception(slot->error);
      }
      if (hit != nullptr) {
        *hit = true;
      }
      return slot->value;
    }
    slot = std::make_shared<Slot>();
    slots_.emplace(request_text, slot);
    ++stats_.misses;
  }

  // Compute outside the lock: cold plans take hundreds of milliseconds and
  // must not serialize unrelated requests.
  std::shared_ptr<const CachedPlan> value;
  try {
    value = compute();
    DPIPE_ENSURE(value != nullptr, "plan compute returned null");
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      slot->error = std::current_exception();
      slot->ready = true;
      // Drop the failed slot so the next identical request retries; the
      // waiters still hold the shared_ptr and will observe the error.
      slots_.erase(request_text);
    }
    ready_cv_.notify_all();
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    slot->value = std::move(value);
    slot->ready = true;
  }
  ready_cv_.notify_all();
  if (hit != nullptr) {
    *hit = false;
  }
  return slot->value;
}

void PlanCache::put(std::shared_ptr<const CachedPlan> plan) {
  DPIPE_REQUIRE(plan != nullptr, "cannot cache a null plan");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = slots_[plan->request_text];
  if (slot != nullptr && !slot->ready) {
    return;  // An in-flight computation owns this slot; let it finish.
  }
  slot = std::make_shared<Slot>();
  slot->ready = true;
  slot->value = std::move(plan);
}

std::shared_ptr<const CachedPlan> PlanCache::find(
    const std::string& request_text) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(request_text);
  if (it == slots_.end() || !it->second->ready ||
      it->second->value == nullptr) {
    return nullptr;
  }
  return it->second->value;
}

std::size_t PlanCache::invalidate_cluster(const Fingerprint& cluster_fp) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second->ready && it->second->value != nullptr &&
        it->second->value->cluster_fp == cluster_fp) {
      it = slots_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.invalidated += removed;
  return removed;
}

std::size_t PlanCache::invalidate(const Fingerprint& fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second->ready && it->second->value != nullptr &&
        it->second->value->fingerprint == fingerprint) {
      it = slots_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.invalidated += removed;
  return removed;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second->ready) {
      it = slots_.erase(it);
      ++stats_.invalidated;
    } else {
      ++it;  // In-flight; its computation will publish into this slot.
    }
  }
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = 0;
  for (const auto& [text, slot] : slots_) {
    if (slot->ready && slot->value != nullptr) {
      ++out.entries;
    }
  }
  return out;
}

}  // namespace dpipe
