#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "core/instr/serialize.h"
#include "core/planner/planner.h"

namespace dpipe {

/// The service's unit of caching and persistence: everything result-visible
/// about one planned request. Wall-time instrumentation (search stats,
/// profiling/partitioning times) is deliberately absent — it varies run to
/// run and would break the byte-identical store round-trip.
struct CachedPlan {
  Fingerprint fingerprint;          ///< request_fingerprint(request).
  Fingerprint model_fp;             ///< Of the model profile bytes.
  Fingerprint cluster_fp;           ///< Invalidation key on cluster change.
  std::string request_text;         ///< canonical_request_text(request).
  PlanConfig config;                ///< The winning configuration.
  PartitionOptions partition_opts;  ///< Its partition context.
  std::vector<PlanConfig> explored; ///< Deterministic (D, S, M) order.
  std::string program_text;         ///< Validated program, .dpipe bytes.

  /// Deserializes the instruction program (validated before caching).
  [[nodiscard]] InstructionProgram program() const {
    return program_from_string(program_text);
  }
};

/// Fingerprint-keyed whole-plan cache with single-flight deduplication:
/// N concurrent identical cold requests run the planner exactly once — the
/// first caller computes while the rest block on the in-flight slot and
/// wake with the shared result. Entries are keyed by the full canonical
/// request bytes (not the fingerprint), so a hash collision can never
/// serve the wrong plan.
class PlanCache {
 public:
  struct Stats {
    std::size_t hits = 0;    ///< Served without running compute (includes
                             ///< single-flight joins).
    std::size_t misses = 0;  ///< Calls that ran compute.
    std::size_t single_flight_joins = 0;  ///< Hits that waited on a
                                          ///< concurrent identical miss.
    std::size_t invalidated = 0;          ///< Entries evicted.
    std::size_t entries = 0;              ///< Ready entries resident now.
  };

  using ComputeFn = std::function<std::shared_ptr<const CachedPlan>()>;

  /// Returns the plan for `request_text`, running `compute` (outside the
  /// cache lock) only if no ready or in-flight entry exists. On compute
  /// failure the error propagates to this caller and every waiter, and the
  /// slot is removed so a later request retries. `hit` (optional) reports
  /// whether this call avoided running compute.
  [[nodiscard]] std::shared_ptr<const CachedPlan> get_or_compute(
      const std::string& request_text, const ComputeFn& compute,
      bool* hit = nullptr);

  /// Inserts a ready entry (the plan-store warm-load path). Overwrites any
  /// existing ready entry with the same request text; in-flight slots are
  /// left to complete.
  void put(std::shared_ptr<const CachedPlan> plan);

  /// The ready entry for `request_text`, or nullptr. Never waits.
  [[nodiscard]] std::shared_ptr<const CachedPlan> find(
      const std::string& request_text) const;

  /// Evicts every ready entry whose cluster fingerprint matches. In-flight
  /// computations are not interrupted (their requests were validated
  /// against the topology they carry). Returns the number evicted.
  std::size_t invalidate_cluster(const Fingerprint& cluster_fp);

  /// Evicts the ready entry with this request fingerprint, if any.
  std::size_t invalidate(const Fingerprint& fingerprint);

  void clear();

  [[nodiscard]] Stats stats() const;

 private:
  /// One cache slot; not ready while its computation is in flight.
  struct Slot {
    bool ready = false;
    std::shared_ptr<const CachedPlan> value;
    std::exception_ptr error;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  mutable Stats stats_;
};

}  // namespace dpipe
