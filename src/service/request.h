#pragma once

#include <iosfwd>
#include <string>

#include "cluster/cluster.h"
#include "common/hash.h"
#include "core/planner/planner.h"
#include "model/model.h"

namespace dpipe {

/// One planning request as the plan service sees it: which model, on which
/// cluster, under which planner settings. This is also the unit of
/// cache identity — see canonical_request_text().
struct PlanRequest {
  ModelDesc model;
  ClusterSpec cluster;
  PlannerOptions options;
};

/// The canonical byte encoding of a request: model profile bytes, cluster
/// topology, and every *result-visible* planner option, in a fixed order
/// with doubles at precision 17. Two requests canonicalize identically iff
/// the planner is guaranteed to produce bit-identical plans for them, so
/// this text is simultaneously
///   - the whole-plan cache key (exact-match, collision-proof),
///   - the fingerprint input (Fingerprint names the entry on disk/wire),
///   - the wire encoding of a request (it parses back losslessly).
///
/// Result-INVISIBLE options are deliberately excluded so they cannot
/// fragment the cache: search_threads, parallel_work_threshold,
/// enable_stage_cache, and cache_store all leave the selected plan
/// bit-identical by the planner's determinism contract.
/// enable_pruning IS included: it changes the `explored` list. Empty
/// candidate lists are resolved to their defaults first
/// (Planner::apply_default_candidates), so "defaulted" and
/// "explicitly-default" requests share one cache entry.
[[nodiscard]] std::string canonical_request_text(const PlanRequest& request);

/// Parses canonical_request_text output (excluded options take their
/// defaults). canonical_request_text(parse_request_text(t)) == t.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] PlanRequest parse_request_text(const std::string& text);

/// Fingerprint of canonical_request_text(request).
[[nodiscard]] Fingerprint request_fingerprint(const PlanRequest& request);

/// Fingerprint of the model profile bytes alone.
[[nodiscard]] Fingerprint model_fingerprint(const ModelDesc& model);

/// Fingerprint of the cluster topology alone — the invalidation key when a
/// cluster changes shape (plans for the old topology are stale).
[[nodiscard]] Fingerprint cluster_fingerprint(const ClusterSpec& cluster);

}  // namespace dpipe
