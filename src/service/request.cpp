#include "service/request.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace dpipe {

namespace {

void write_candidates(std::ostream& out, const char* label,
                      const std::vector<int>& values) {
  out << label << ' ' << values.size();
  for (const int v : values) {
    out << ' ' << v;
  }
  out << '\n';
}

std::vector<int> read_candidates(std::istream& in, const std::string& label) {
  std::string keyword;
  require(static_cast<bool>(in >> keyword) && keyword == label,
          "expected " + label + " line");
  std::size_t count = 0;
  require(static_cast<bool>(in >> count), "malformed " + label + " count");
  std::vector<int> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    require(static_cast<bool>(in >> values[i]), "truncated " + label);
  }
  return values;
}

}  // namespace

std::string canonical_request_text(const PlanRequest& request) {
  PlannerOptions options = request.options;
  Planner::apply_default_candidates(options, request.cluster.world_size());
  std::ostringstream out;
  out.precision(17);
  out << "dpipe-plan-request v1\n";
  write_canonical(out, request.model);
  write_canonical(out, request.cluster);
  out << "options global_batch=" << options.global_batch
      << " fill=" << (options.enable_fill ? 1 : 0)
      << " partial=" << (options.enable_partial ? 1 : 0)
      << " mem=" << (options.check_memory ? 1 : 0)
      << " one_replica=" << (options.one_replica_per_stage ? 1 : 0)
      << " int_micro=" << (options.integer_microbatches ? 1 : 0)
      << " prune=" << (options.enable_pruning ? 1 : 0)
      << " bindable=" << (options.require_bindable_placement ? 1 : 0)
      << " family=" << static_cast<int>(options.schedule_family) << '\n';
  write_candidates(out, "stage_candidates", options.stage_candidates);
  write_candidates(out, "micro_candidates", options.micro_candidates);
  write_candidates(out, "group_candidates", options.group_candidates);
  write_candidates(out, "vstage_candidates", options.vstage_candidates);
  write_canonical(out, options.profiler);
  out << "end\n";
  return out.str();
}

PlanRequest parse_request_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  require(std::getline(in, line) && line == "dpipe-plan-request v1",
          "not a dpipe-plan-request v1 payload");
  PlanRequest request;
  request.model = read_canonical_model(in);
  request.cluster = read_canonical_cluster(in);
  std::string keyword;
  require(static_cast<bool>(in >> keyword) && keyword == "options",
          "expected options line");
  const auto field = [&in](const std::string& key) {
    std::string token;
    require(static_cast<bool>(in >> token) && token.size() > key.size() &&
                token.compare(0, key.size(), key) == 0,
            "expected options field " + key);
    return std::stod(token.substr(key.size()));
  };
  request.options.global_batch = field("global_batch=");
  request.options.enable_fill = field("fill=") != 0.0;
  request.options.enable_partial = field("partial=") != 0.0;
  request.options.check_memory = field("mem=") != 0.0;
  request.options.one_replica_per_stage = field("one_replica=") != 0.0;
  request.options.integer_microbatches = field("int_micro=") != 0.0;
  request.options.enable_pruning = field("prune=") != 0.0;
  request.options.require_bindable_placement = field("bindable=") != 0.0;
  request.options.schedule_family =
      static_cast<ScheduleFamily>(static_cast<int>(field("family=")));
  request.options.stage_candidates = read_candidates(in, "stage_candidates");
  request.options.micro_candidates = read_candidates(in, "micro_candidates");
  request.options.group_candidates = read_candidates(in, "group_candidates");
  request.options.vstage_candidates =
      read_candidates(in, "vstage_candidates");
  request.options.profiler = read_canonical_profiler_options(in);
  require(static_cast<bool>(in >> keyword) && keyword == "end",
          "expected request terminator");
  return request;
}

Fingerprint request_fingerprint(const PlanRequest& request) {
  return fingerprint_bytes(canonical_request_text(request));
}

Fingerprint model_fingerprint(const ModelDesc& model) {
  std::ostringstream out;
  write_canonical(out, model);
  return fingerprint_bytes(out.str());
}

Fingerprint cluster_fingerprint(const ClusterSpec& cluster) {
  std::ostringstream out;
  write_canonical(out, cluster);
  return fingerprint_bytes(out.str());
}

}  // namespace dpipe
