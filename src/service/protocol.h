#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "service/plan_cache.h"
#include "service/request.h"

namespace dpipe {

class PlanService;

/// Wire framing for dpipe_plan_serve: each message is a 4-byte big-endian
/// length followed by that many payload bytes, over any byte stream (a Unix
/// socket or a stdio pipe pair). Payloads are the same canonical text forms
/// the cache and store use, so the wire encoding is free.

/// Maximum accepted frame payload (a guard against a corrupt or hostile
/// length prefix, not a protocol limit — real plans are well under this).
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024u * 1024u;

/// Writes one frame, handling short writes. Throws std::runtime_error on
/// I/O failure (including a closed peer).
void write_frame(int fd, const std::string& payload);

/// Reads one frame. Returns std::nullopt on clean EOF at a frame boundary;
/// throws std::runtime_error on I/O failure, a truncated frame, or a length
/// prefix above kMaxFrameBytes.
[[nodiscard]] std::optional<std::string> read_frame(int fd);

/// Request payload: a verb line then the verb's body.
///   "plan\n"  + canonical_request_text(request)   -> plan response
///   "stats\n"                                     -> stats text response
///   "shutdown\n"                                  -> server stops serving
[[nodiscard]] std::string encode_plan_request(const PlanRequest& request);

/// A decoded plan response. `ok` false means the server reported an error
/// (message in `error`); otherwise `plan` holds the full verified entry and
/// `cache_hit` tells whether the server answered from its cache.
struct PlanResponse {
  bool ok = false;
  bool cache_hit = false;
  std::string error;
  std::shared_ptr<const CachedPlan> plan;
};

/// Response payload for "plan": "ok hit=<0|1>\n" + save_plan_entry bytes,
/// or "error <message>" on failure.
[[nodiscard]] std::string encode_plan_response(const CachedPlan& plan,
                                               bool cache_hit);
[[nodiscard]] std::string encode_error_response(const std::string& message);

/// Decodes a plan response, re-verifying a successful payload exactly like
/// the plan store does (fingerprints re-derived, program parsed). Transport
/// corruption surfaces as a thrown std::invalid_argument, never as a
/// silently wrong plan.
[[nodiscard]] PlanResponse decode_plan_response(const std::string& payload);

struct ServeResult {
  std::size_t requests_answered = 0;
  bool shutdown_requested = false;  ///< Client sent "shutdown".
};

/// Serves framed requests from `in_fd`, writing responses to `out_fd`,
/// until EOF, a "shutdown" request, or `max_requests` plan/stats requests
/// have been answered (0 = unlimited). Per-request planner errors are
/// reported to the client as error responses; the loop keeps serving.
ServeResult serve_connection(PlanService& service, int in_fd, int out_fd,
                             std::size_t max_requests = 0);

}  // namespace dpipe
