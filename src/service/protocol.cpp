#include "service/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/error.h"
#include "service/plan_store.h"
#include "service/service.h"

namespace dpipe {

namespace {

void write_all(int fd, const char* data, std::size_t bytes) {
  while (bytes > 0) {
    const ssize_t written = ::write(fd, data, bytes);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("frame write failed: ") +
                               std::strerror(errno));
    }
    data += written;
    bytes -= static_cast<std::size_t>(written);
  }
}

/// Reads exactly `bytes`. Returns false only on EOF before the first byte;
/// EOF mid-read (a truncated frame) throws.
bool read_all(int fd, char* data, std::size_t bytes) {
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, data + got, bytes - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("frame read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) {
        return false;
      }
      throw std::runtime_error("truncated frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// The stats verb's response body: one "key value" line per counter.
std::string stats_text(const PlanService& service) {
  const PlanService::Stats stats = service.stats();
  std::ostringstream out;
  out << "ok\n";
  out << "cache_hits " << stats.cache.hits << '\n';
  out << "cache_misses " << stats.cache.misses << '\n';
  out << "single_flight_joins " << stats.cache.single_flight_joins << '\n';
  out << "cache_entries " << stats.cache.entries << '\n';
  out << "planner_runs " << stats.planner_runs << '\n';
  out << "store_loaded " << stats.store_loaded << '\n';
  out << "stage_cost_entries " << stats.stage_costs.entries << '\n';
  return out.str();
}

}  // namespace

void write_frame(int fd, const std::string& payload) {
  require(payload.size() <= kMaxFrameBytes, "frame payload too large");
  const auto length = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>((length >> 24) & 0xFF),
                    static_cast<char>((length >> 16) & 0xFF),
                    static_cast<char>((length >> 8) & 0xFF),
                    static_cast<char>(length & 0xFF)};
  write_all(fd, header, sizeof(header));
  write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  char header[4];
  if (!read_all(fd, header, sizeof(header))) {
    return std::nullopt;
  }
  const std::uint32_t length =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (length > kMaxFrameBytes) {
    throw std::runtime_error("frame length prefix exceeds limit");
  }
  std::string payload(length, '\0');
  if (length > 0 && !read_all(fd, payload.data(), length)) {
    throw std::runtime_error("truncated frame");
  }
  return payload;
}

std::string encode_plan_request(const PlanRequest& request) {
  return "plan\n" + canonical_request_text(request);
}

std::string encode_plan_response(const CachedPlan& plan, bool cache_hit) {
  std::ostringstream out;
  out << "ok hit=" << (cache_hit ? 1 : 0) << '\n';
  save_plan_entry(plan, out);
  return out.str();
}

std::string encode_error_response(const std::string& message) {
  return "error " + message;
}

PlanResponse decode_plan_response(const std::string& payload) {
  PlanResponse response;
  std::istringstream in(payload);
  std::string keyword;
  require(static_cast<bool>(in >> keyword), "empty response payload");
  if (keyword == "error") {
    std::getline(in, response.error);
    if (!response.error.empty() && response.error.front() == ' ') {
      response.error.erase(response.error.begin());
    }
    return response;
  }
  require(keyword == "ok", "malformed response verb");
  std::string hit_token;
  require(static_cast<bool>(in >> hit_token) &&
              hit_token.rfind("hit=", 0) == 0,
          "malformed response hit field");
  response.cache_hit = hit_token.substr(4) != "0";
  std::string line;
  std::getline(in, line);  // Consume the status line's newline.
  // load_plan_entry re-verifies fingerprints and parses the program, so a
  // corrupted payload throws here instead of yielding a wrong plan.
  response.plan = std::make_shared<const CachedPlan>(load_plan_entry(in));
  response.ok = true;
  return response;
}

ServeResult serve_connection(PlanService& service, int in_fd, int out_fd,
                             std::size_t max_requests) {
  ServeResult result;
  while (max_requests == 0 || result.requests_answered < max_requests) {
    std::optional<std::string> payload = read_frame(in_fd);
    if (!payload.has_value()) {
      break;  // Clean EOF: the client is done.
    }
    std::istringstream in(*payload);
    std::string verb;
    std::getline(in, verb);
    if (verb == "shutdown") {
      result.shutdown_requested = true;
      write_frame(out_fd, "ok\n");
      break;
    }
    std::string response;
    if (verb == "plan") {
      try {
        const std::string request_text =
            payload->substr(payload->find('\n') + 1);
        // Parse (validates the payload) and re-canonicalize; a client that
        // sends non-canonical bytes still deduplicates correctly.
        const PlanRequest request = parse_request_text(request_text);
        bool cache_hit = false;
        const auto plan = service.plan(request, &cache_hit);
        response = encode_plan_response(*plan, cache_hit);
      } catch (const std::exception& error) {
        response = encode_error_response(error.what());
      }
    } else if (verb == "stats") {
      response = stats_text(service);
    } else {
      response = encode_error_response("unknown request verb: " + verb);
    }
    write_frame(out_fd, response);
    ++result.requests_answered;
  }
  return result;
}

}  // namespace dpipe
