#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/plan_cache.h"

namespace dpipe {

/// Writes one PlanConfig as a single line (precision-17 doubles). Shared
/// by the plan store and the wire protocol.
void write_plan_config(std::ostream& out, const PlanConfig& config);

/// Parses a write_plan_config line (tokens after the leading keyword).
[[nodiscard]] PlanConfig read_plan_config(std::istream& in);

/// Serializes a cache entry to the versioned "dpipe-plan v1" text form:
/// fingerprints, the canonical request bytes, the winning config and its
/// partition options, the explored list, and the instruction program via
/// the .dpipe serializer. save -> load -> save is byte-identical.
void save_plan_entry(const CachedPlan& entry, std::ostream& out);

/// Parses save_plan_entry output and re-verifies it: the request bytes
/// must hash to the stored fingerprint and re-derive the stored model and
/// cluster fingerprints, and the program must parse. Throws
/// std::invalid_argument on any mismatch (the store treats that as a
/// corrupt entry).
[[nodiscard]] CachedPlan load_plan_entry(std::istream& in);

/// A directory of persisted plans, one "<fingerprint>.plan" file per
/// entry, written atomically (temp file + rename). A restarted plan
/// server loads the directory and starts warm; entries that fail
/// verification are deleted rather than served.
class PlanStore {
 public:
  struct LoadReport {
    std::vector<std::shared_ptr<const CachedPlan>> plans;
    std::size_t corrupt_dropped = 0;  ///< Unparseable/mismatched, deleted.
  };

  /// Opens (creating if needed) the store directory.
  explicit PlanStore(std::string dir);

  /// Loads every .plan file in the directory. Corrupt entries are deleted
  /// from disk and counted.
  [[nodiscard]] LoadReport load_all();

  /// Persists one entry (atomic: temp file + rename, so a crashed writer
  /// never leaves a half-written entry under the canonical name).
  void put(const CachedPlan& entry);

  /// Deletes every persisted plan whose cluster fingerprint matches.
  /// Returns the number of files removed.
  std::size_t invalidate_cluster(const Fingerprint& cluster_fp);

  /// Deletes the persisted plan with this request fingerprint, if present.
  std::size_t erase(const Fingerprint& fingerprint);

  void clear();

  /// Number of .plan files currently on disk.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  [[nodiscard]] std::string path_for(const Fingerprint& fingerprint) const;

  std::string dir_;
};

}  // namespace dpipe
