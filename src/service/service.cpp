#include "service/service.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"
#include "core/instr/serialize.h"
#include "core/instr/validate.h"
#include "core/planner/planner.h"

namespace dpipe {

PlanService::PlanService(PlanServiceOptions options)
    : options_(std::move(options)) {
  if (!options_.store_dir.empty()) {
    store_.emplace(options_.store_dir);
    // Warm start: every verified on-disk plan becomes a ready cache entry,
    // so a restarted server answers repeats without replanning anything.
    PlanStore::LoadReport report = store_->load_all();
    store_loaded_ = report.plans.size();
    store_corrupt_dropped_ = report.corrupt_dropped;
    for (auto& plan : report.plans) {
      cache_.put(std::move(plan));
    }
  }
}

std::shared_ptr<const CachedPlan> PlanService::compute_plan(
    const PlanRequest& request, const std::string& request_text) {
  PlannerOptions popts = request.options;
  popts.search_threads = options_.planner_threads;
  popts.parallel_work_threshold = options_.parallel_work_threshold;
  popts.enable_stage_cache = true;
  popts.cache_store = &stage_costs_;
  const Planner planner(request.model, request.cluster, popts);
  const Plan plan = planner.plan();
  if (options_.validate_programs) {
    require_valid_program(plan.program);
  }

  auto entry = std::make_shared<CachedPlan>();
  entry->fingerprint = fingerprint_bytes(request_text);
  entry->model_fp = model_fingerprint(request.model);
  entry->cluster_fp = cluster_fingerprint(request.cluster);
  entry->request_text = request_text;
  entry->config = plan.config;
  entry->partition_opts = plan.partition_opts;
  entry->explored = plan.explored;
  entry->program_text = program_to_string(plan.program);

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++planner_runs_;
  }
  if (store_.has_value()) {
    const std::lock_guard<std::mutex> lock(store_mutex_);
    store_->put(*entry);
  }
  return entry;
}

std::shared_ptr<const CachedPlan> PlanService::plan(const PlanRequest& request,
                                                    bool* cache_hit) {
  const std::string request_text = canonical_request_text(request);
  return cache_.get_or_compute(
      request_text,
      [this, &request, &request_text] {
        return compute_plan(request, request_text);
      },
      cache_hit);
}

std::vector<std::shared_ptr<const CachedPlan>> PlanService::plan_all(
    const std::vector<PlanRequest>& requests, int threads) {
  std::vector<std::shared_ptr<const CachedPlan>> results(requests.size());
  if (requests.empty()) {
    return results;
  }
  if (threads <= 0) {
    threads = static_cast<int>(std::min<std::size_t>(
        requests.size(), static_cast<std::size_t>(default_thread_count())));
  }
  ThreadPool pool(threads);
  pool.parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = plan(requests[i]);
  });
  return results;
}

PlanService::InvalidationReport PlanService::invalidate_cluster(
    const ClusterSpec& cluster) {
  const Fingerprint cluster_fp = cluster_fingerprint(cluster);
  InvalidationReport report;
  report.cache_evicted = cache_.invalidate_cluster(cluster_fp);
  if (store_.has_value()) {
    const std::lock_guard<std::mutex> lock(store_mutex_);
    report.store_removed = store_->invalidate_cluster(cluster_fp);
  }
  // Stage-cost contexts embed the cluster's canonical bytes, so entries for
  // the old topology were already unreachable by key; clearing just
  // reclaims the dead weight.
  stage_costs_.clear();
  return report;
}

PlanService::Stats PlanService::stats() const {
  Stats out;
  out.cache = cache_.stats();
  out.stage_costs = stage_costs_.stats();
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  out.planner_runs = planner_runs_;
  out.store_loaded = store_loaded_;
  out.store_corrupt_dropped = store_corrupt_dropped_;
  return out;
}

}  // namespace dpipe
