#include "service/plan_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "service/request.h"

namespace dpipe {

namespace fs = std::filesystem;

namespace {

double field(std::istream& in, const std::string& key) {
  std::string token;
  require(static_cast<bool>(in >> token) && token.size() > key.size() &&
              token.compare(0, key.size(), key) == 0,
          "malformed plan field, expected " + key);
  return std::stod(token.substr(key.size()));
}

void expect_keyword(std::istream& in, const std::string& keyword) {
  std::string token;
  require(static_cast<bool>(in >> token) && token == keyword,
          "expected keyword " + keyword);
}

Fingerprint read_fingerprint_line(std::istream& in,
                                  const std::string& keyword) {
  expect_keyword(in, keyword);
  std::string hex;
  require(static_cast<bool>(in >> hex), "truncated " + keyword);
  return Fingerprint::from_hex(hex);
}

/// Reads a `<keyword> <n>\n` header then exactly n raw bytes.
std::string read_sized_block(std::istream& in, const std::string& keyword) {
  expect_keyword(in, keyword);
  std::size_t bytes = 0;
  require(static_cast<bool>(in >> bytes), "malformed " + keyword + " size");
  std::string line;
  std::getline(in, line);  // Consume the header's newline.
  std::string block(bytes, '\0');
  in.read(block.data(), static_cast<std::streamsize>(bytes));
  require(static_cast<std::size_t>(in.gcount()) == bytes,
          "truncated " + keyword + " block");
  return block;
}

void write_partition_opts(std::ostream& out, const PartitionOptions& opts) {
  out << "popts s=" << opts.num_stages << " m=" << opts.num_microbatches
      << " d=" << opts.group_size << " dp=" << opts.data_parallel_degree
      << " mb=" << opts.microbatch_size
      << " sc=" << (opts.self_conditioning ? 1 : 0)
      << " scp=" << opts.self_cond_prob
      << " fur=" << (opts.force_uniform_replicas ? 1 : 0)
      << " ccf=" << opts.comm_competition_factor
      << " sds=" << (opts.scalarize_dp_states ? 1 : 0)
      << " stride=" << opts.dp_rank_stride
      << " ranks=" << opts.device_ranks.size();
  for (const int rank : opts.device_ranks) {
    out << ' ' << rank;
  }
  out << '\n';
}

PartitionOptions read_partition_opts(std::istream& in) {
  expect_keyword(in, "popts");
  PartitionOptions opts;
  opts.num_stages = static_cast<int>(field(in, "s="));
  opts.num_microbatches = static_cast<int>(field(in, "m="));
  opts.group_size = static_cast<int>(field(in, "d="));
  opts.data_parallel_degree = static_cast<int>(field(in, "dp="));
  opts.microbatch_size = field(in, "mb=");
  opts.self_conditioning = field(in, "sc=") != 0.0;
  opts.self_cond_prob = field(in, "scp=");
  opts.force_uniform_replicas = field(in, "fur=") != 0.0;
  opts.comm_competition_factor = field(in, "ccf=");
  opts.scalarize_dp_states = field(in, "sds=") != 0.0;
  opts.dp_rank_stride = static_cast<int>(field(in, "stride="));
  const auto num_ranks = static_cast<std::size_t>(field(in, "ranks="));
  opts.device_ranks.resize(num_ranks);
  for (std::size_t i = 0; i < num_ranks; ++i) {
    require(static_cast<bool>(in >> opts.device_ranks[i]),
            "truncated device_ranks");
  }
  return opts;
}

}  // namespace

void write_plan_config(std::ostream& out, const PlanConfig& config) {
  out << "config s=" << config.num_stages << " m=" << config.num_microbatches
      << " d=" << config.group_size
      << " dp=" << config.data_parallel_degree
      << " t=" << config.predicted_iteration_ms
      << " br=" << config.planned_bubble_ratio
      << " mem=" << (config.memory_feasible ? 1 : 0)
      << " v=" << config.vstages << '\n';
}

PlanConfig read_plan_config(std::istream& in) {
  expect_keyword(in, "config");
  PlanConfig config;
  config.num_stages = static_cast<int>(field(in, "s="));
  config.num_microbatches = static_cast<int>(field(in, "m="));
  config.group_size = static_cast<int>(field(in, "d="));
  config.data_parallel_degree = static_cast<int>(field(in, "dp="));
  config.predicted_iteration_ms = field(in, "t=");
  config.planned_bubble_ratio = field(in, "br=");
  config.memory_feasible = field(in, "mem=") != 0.0;
  config.vstages = static_cast<int>(field(in, "v="));
  return config;
}

void save_plan_entry(const CachedPlan& entry, std::ostream& out) {
  const auto flags = out.flags();
  const auto precision = out.precision(17);
  out << "dpipe-plan v1\n";
  out << "fingerprint " << entry.fingerprint.hex() << '\n';
  out << "model_fingerprint " << entry.model_fp.hex() << '\n';
  out << "cluster_fingerprint " << entry.cluster_fp.hex() << '\n';
  out << "request_bytes " << entry.request_text.size() << '\n';
  out << entry.request_text;
  write_plan_config(out, entry.config);
  write_partition_opts(out, entry.partition_opts);
  out << "explored " << entry.explored.size() << '\n';
  for (const PlanConfig& config : entry.explored) {
    write_plan_config(out, config);
  }
  out << "program_bytes " << entry.program_text.size() << '\n';
  out << entry.program_text;
  out << "end\n";
  out.precision(precision);
  out.flags(flags);
}

CachedPlan load_plan_entry(std::istream& in) {
  std::string line;
  require(std::getline(in, line) && line == "dpipe-plan v1",
          "not a dpipe-plan v1 file");
  CachedPlan entry;
  entry.fingerprint = read_fingerprint_line(in, "fingerprint");
  entry.model_fp = read_fingerprint_line(in, "model_fingerprint");
  entry.cluster_fp = read_fingerprint_line(in, "cluster_fingerprint");
  entry.request_text = read_sized_block(in, "request_bytes");
  entry.config = read_plan_config(in);
  entry.partition_opts = read_partition_opts(in);
  expect_keyword(in, "explored");
  std::size_t explored_count = 0;
  require(static_cast<bool>(in >> explored_count), "malformed explored");
  entry.explored.reserve(explored_count);
  for (std::size_t i = 0; i < explored_count; ++i) {
    entry.explored.push_back(read_plan_config(in));
  }
  std::getline(in, line);  // Position after the last config line.
  entry.program_text = read_sized_block(in, "program_bytes");
  expect_keyword(in, "end");

  // Verification: the stored fingerprints must re-derive from the stored
  // request bytes, and the program must parse. A stale or bit-rotted entry
  // fails here instead of being served.
  require(fingerprint_bytes(entry.request_text) == entry.fingerprint,
          "plan entry fingerprint does not match its request bytes");
  const PlanRequest request = parse_request_text(entry.request_text);
  require(model_fingerprint(request.model) == entry.model_fp,
          "plan entry model fingerprint mismatch");
  require(cluster_fingerprint(request.cluster) == entry.cluster_fp,
          "plan entry cluster fingerprint mismatch");
  (void)program_from_string(entry.program_text);
  return entry;
}

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {
  require(!dir_.empty(), "plan store directory must be non-empty");
  fs::create_directories(dir_);
}

std::string PlanStore::path_for(const Fingerprint& fingerprint) const {
  return (fs::path(dir_) / (fingerprint.hex() + ".plan")).string();
}

PlanStore::LoadReport PlanStore::load_all() {
  LoadReport report;
  std::vector<fs::path> files;
  for (const auto& dir_entry : fs::directory_iterator(dir_)) {
    if (dir_entry.is_regular_file() &&
        dir_entry.path().extension() == ".plan") {
      files.push_back(dir_entry.path());
    }
  }
  // Deterministic load order (directory iteration order is not specified).
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    try {
      std::ifstream in(path, std::ios::binary);
      require(static_cast<bool>(in), "cannot open plan file");
      auto entry = std::make_shared<CachedPlan>(load_plan_entry(in));
      require(path.filename().string() == entry->fingerprint.hex() + ".plan",
              "plan file name does not match its fingerprint");
      report.plans.push_back(std::move(entry));
    } catch (const std::exception&) {
      // Corrupt or stale-format entry: drop it from disk so it is
      // re-planned (and re-persisted) on next request.
      std::error_code ec;
      fs::remove(path, ec);
      ++report.corrupt_dropped;
    }
  }
  return report;
}

void PlanStore::put(const CachedPlan& entry) {
  const std::string final_path = path_for(entry.fingerprint);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    require(static_cast<bool>(out),
            "cannot open plan store file for writing: " + tmp_path);
    save_plan_entry(entry, out);
    require(static_cast<bool>(out), "plan store write failed: " + tmp_path);
  }
  fs::rename(tmp_path, final_path);
}

std::size_t PlanStore::invalidate_cluster(const Fingerprint& cluster_fp) {
  std::size_t removed = 0;
  for (const auto& plan : load_all().plans) {
    if (plan->cluster_fp == cluster_fp) {
      std::error_code ec;
      if (fs::remove(path_for(plan->fingerprint), ec)) {
        ++removed;
      }
    }
  }
  return removed;
}

std::size_t PlanStore::erase(const Fingerprint& fingerprint) {
  std::error_code ec;
  return fs::remove(path_for(fingerprint), ec) ? 1 : 0;
}

void PlanStore::clear() {
  for (const auto& dir_entry : fs::directory_iterator(dir_)) {
    if (dir_entry.is_regular_file() &&
        dir_entry.path().extension() == ".plan") {
      std::error_code ec;
      fs::remove(dir_entry.path(), ec);
    }
  }
}

std::size_t PlanStore::size() const {
  std::size_t count = 0;
  for (const auto& dir_entry : fs::directory_iterator(dir_)) {
    if (dir_entry.is_regular_file() &&
        dir_entry.path().extension() == ".plan") {
      ++count;
    }
  }
  return count;
}

}  // namespace dpipe
