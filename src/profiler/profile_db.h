#pragma once

#include <vector>

#include "model/model.h"
#include "profiler/cost_model.h"

namespace dpipe {

/// The profile database produced by step 1 of the paper's workflow (Fig. 7):
/// per-layer forward/backward times sampled on a batch-size grid, plus the
/// static layer sizes. All planning algorithms (partitioner, schedule
/// builder, bubble filler) read exclusively from this class.
///
/// Times at off-grid batch sizes are piecewise-linear interpolations of the
/// sampled grid (linear extrapolation beyond the ends), matching how real
/// profilers are consulted. Range sums use per-grid-point prefix sums, so a
/// [lo, hi) stage query is O(1).
class ProfileDb {
 public:
  /// Samples `cost` on `batch_grid` (strictly increasing, non-empty) for
  /// every layer of `model`.
  ProfileDb(const ModelDesc& model, const AnalyticCostModel& cost,
            std::vector<double> batch_grid);

  [[nodiscard]] double fwd_ms(int component, int layer, double batch) const;
  [[nodiscard]] double bwd_ms(int component, int layer, double batch) const;

  /// Sum of forward times of layers [lo, hi) of `component` at `batch`.
  [[nodiscard]] double fwd_range_ms(int component, int lo, int hi,
                                    double batch) const;
  [[nodiscard]] double bwd_range_ms(int component, int lo, int hi,
                                    double batch) const;

  /// Sum of gradient sizes (MB) of layers [lo, hi) of `component`.
  [[nodiscard]] double grad_range_mb(int component, int lo, int hi) const;
  /// Sum of parameter sizes (MB) of layers [lo, hi).
  [[nodiscard]] double param_range_mb(int component, int lo, int hi) const;
  /// Sum of stashed-activation sizes (MB per sample) of layers [lo, hi).
  [[nodiscard]] double act_range_mb(int component, int lo, int hi) const;

  [[nodiscard]] const LayerDesc& layer(int component, int layer) const;
  [[nodiscard]] const ModelDesc& model() const { return model_; }
  [[nodiscard]] const std::vector<double>& batch_grid() const {
    return batch_grid_;
  }

 private:
  struct LayerSamples {
    std::vector<double> fwd_ms;  ///< Indexed by batch-grid position.
    std::vector<double> bwd_ms;
  };
  struct ComponentProfile {
    std::vector<LayerSamples> layers;
    /// prefix_fwd[g][l] = sum of fwd_ms[g] over layers [0, l).
    std::vector<std::vector<double>> prefix_fwd;
    std::vector<std::vector<double>> prefix_bwd;
    std::vector<double> prefix_grad_mb;   ///< length L+1
    std::vector<double> prefix_param_mb;  ///< length L+1
    std::vector<double> prefix_act_mb;    ///< length L+1
  };

  /// Interpolation segment of `batch` on the grid: samples[lo..hi] weighted
  /// (1 - t, t). Clamped to the outermost segments for extrapolation.
  /// Requires grid.size() >= 2 and batch > 0.
  struct Segment {
    std::size_t lo = 0;
    std::size_t hi = 1;
    double t = 0.0;
  };
  [[nodiscard]] Segment segment(double batch) const;

  [[nodiscard]] double interpolate(const std::vector<double>& samples,
                                   double batch) const;
  /// O(1) range-sum interpolation: the [lo, hi) prefix difference at the
  /// two grid points bracketing `batch`, linearly blended. Bit-identical to
  /// interpolating the per-grid-point range sums.
  [[nodiscard]] double interpolate_range(
      const std::vector<std::vector<double>>& prefix, int lo, int hi,
      double batch) const;
  void check_range(int component, int lo, int hi) const;

  ModelDesc model_;
  std::vector<double> batch_grid_;
  std::vector<ComponentProfile> components_;
};

/// The default batch grid used by the profiler (covers the paper's partial
/// batch candidates {4,...,96} plus the micro-batch sizes that occur).
[[nodiscard]] std::vector<double> default_batch_grid();

}  // namespace dpipe
