#pragma once

#include <cstdint>
#include <iosfwd>

#include "cluster/cluster.h"
#include "profiler/profile_db.h"

namespace dpipe {

struct ProfilerOptions {
  std::vector<double> batch_grid = default_batch_grid();
  std::uint64_t noise_seed = 0xD1FFu;  ///< "profiled" noise seed.
  double noise_amplitude = 0.02;
  int repeats = 10;        ///< Measurement repetitions per (layer, batch).
  int warmup_repeats = 3;  ///< Discarded warm-up runs per (layer, batch).
};

/// Canonical text form of the profiler settings (every ProfileDb-visible
/// field, fixed order, doubles at precision 17). Part of the plan service's
/// request fingerprint: two requests whose profiles could differ must never
/// share a cached plan.
void write_canonical(std::ostream& out, const ProfilerOptions& options);

/// Parses write_canonical output (byte-identity on re-serialization).
[[nodiscard]] ProfilerOptions read_canonical_profiler_options(
    std::istream& in);

/// Result of the parallel profiling pass (step 1 of Fig. 7).
struct ProfileReport {
  ProfileDb db;
  /// Estimated wall-clock time of profiling on the real cluster: every
  /// (layer, batch, repeat) measurement executed once, work divided over
  /// all devices (the paper reports ~55 s for SD v2.1 on 16 GPUs).
  double profiling_wall_ms = 0.0;
};

/// Emulates the cluster-parallel profiler: builds the ProfileDb from the
/// analytic cost model and estimates what profiling would have cost on the
/// given cluster.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  [[nodiscard]] ProfileReport profile(const ModelDesc& model,
                                      const ClusterSpec& cluster) const;

  [[nodiscard]] const ProfilerOptions& options() const { return options_; }

 private:
  ProfilerOptions options_;
};

}  // namespace dpipe
