#include "profiler/profiler.h"

namespace dpipe {

Profiler::Profiler(ProfilerOptions options) : options_(std::move(options)) {
  require(options_.repeats >= 1, "repeats must be >= 1");
  require(options_.warmup_repeats >= 0, "warmup_repeats must be >= 0");
}

ProfileReport Profiler::profile(const ModelDesc& model,
                                const ClusterSpec& cluster) const {
  validate(model);
  validate(cluster);
  const AnalyticCostModel cost(cluster.device,
                               NoiseSource(options_.noise_seed,
                                           options_.noise_amplitude));
  ProfileDb db(model, cost, options_.batch_grid);

  // Wall-clock estimate: each (layer, batch) cell is measured
  // warmup + repeats times; cells are distributed over all devices.
  double total_measurement_ms = 0.0;
  const int runs = options_.repeats + options_.warmup_repeats;
  for (std::size_t ci = 0; ci < model.components.size(); ++ci) {
    const ComponentDesc& comp = model.components[ci];
    for (int li = 0; li < comp.num_layers(); ++li) {
      for (const double batch : options_.batch_grid) {
        double per_run = db.fwd_ms(static_cast<int>(ci), li, batch);
        if (comp.trainable) {
          per_run += db.bwd_ms(static_cast<int>(ci), li, batch);
        }
        // ~1 ms fixed cost per measurement (launch, sync, record).
        total_measurement_ms += runs * (per_run + 1.0);
      }
    }
  }
  ProfileReport report{std::move(db),
                       total_measurement_ms / cluster.world_size()};
  return report;
}

}  // namespace dpipe
