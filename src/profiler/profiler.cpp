#include "profiler/profiler.h"

#include <istream>
#include <ostream>

namespace dpipe {

Profiler::Profiler(ProfilerOptions options) : options_(std::move(options)) {
  require(options_.repeats >= 1, "repeats must be >= 1");
  require(options_.warmup_repeats >= 0, "warmup_repeats must be >= 0");
}

ProfileReport Profiler::profile(const ModelDesc& model,
                                const ClusterSpec& cluster) const {
  validate(model);
  validate(cluster);
  const AnalyticCostModel cost(cluster.device,
                               NoiseSource(options_.noise_seed,
                                           options_.noise_amplitude));
  ProfileDb db(model, cost, options_.batch_grid);

  // Wall-clock estimate: each (layer, batch) cell is measured
  // warmup + repeats times; cells are distributed over all devices.
  double total_measurement_ms = 0.0;
  const int runs = options_.repeats + options_.warmup_repeats;
  for (std::size_t ci = 0; ci < model.components.size(); ++ci) {
    const ComponentDesc& comp = model.components[ci];
    for (int li = 0; li < comp.num_layers(); ++li) {
      for (const double batch : options_.batch_grid) {
        double per_run = db.fwd_ms(static_cast<int>(ci), li, batch);
        if (comp.trainable) {
          per_run += db.bwd_ms(static_cast<int>(ci), li, batch);
        }
        // ~1 ms fixed cost per measurement (launch, sync, record).
        total_measurement_ms += runs * (per_run + 1.0);
      }
    }
  }
  ProfileReport report{std::move(db),
                       total_measurement_ms / cluster.world_size()};
  return report;
}

void write_canonical(std::ostream& out, const ProfilerOptions& options) {
  const auto flags = out.flags();
  const auto precision = out.precision(17);
  out << "dpipe-profiler v1\n";
  out << "batch_grid " << options.batch_grid.size();
  for (const double batch : options.batch_grid) {
    out << ' ' << batch;
  }
  out << '\n';
  out << "noise " << options.noise_seed << ' ' << options.noise_amplitude
      << '\n';
  out << "repeats " << options.repeats << ' ' << options.warmup_repeats
      << '\n';
  out.precision(precision);
  out.flags(flags);
}

ProfilerOptions read_canonical_profiler_options(std::istream& in) {
  std::string line;
  while (std::getline(in, line) && line.empty()) {
  }
  require(line == "dpipe-profiler v1", "not a dpipe-profiler v1 block");
  ProfilerOptions options;
  std::string keyword;
  require(static_cast<bool>(in >> keyword) && keyword == "batch_grid",
          "expected batch_grid line");
  std::size_t grid_size = 0;
  require(static_cast<bool>(in >> grid_size), "malformed batch_grid size");
  options.batch_grid.resize(grid_size);
  for (std::size_t i = 0; i < grid_size; ++i) {
    require(static_cast<bool>(in >> options.batch_grid[i]),
            "truncated batch_grid");
  }
  require(static_cast<bool>(in >> keyword) && keyword == "noise",
          "expected noise line");
  require(static_cast<bool>(in >> options.noise_seed >>
                            options.noise_amplitude),
          "malformed noise line");
  require(static_cast<bool>(in >> keyword) && keyword == "repeats",
          "expected repeats line");
  require(static_cast<bool>(in >> options.repeats >>
                            options.warmup_repeats),
          "malformed repeats line");
  std::getline(in, line);  // Consume the trailing newline.
  return options;
}

}  // namespace dpipe
