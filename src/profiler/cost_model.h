#pragma once

#include "cluster/cluster.h"
#include "common/noise.h"
#include "model/model.h"

namespace dpipe {

/// Analytic per-layer execution time model: a roofline-style estimate
///   time(batch) = batch * gflop / (efficiency * peak_tflops) + overhead
/// with deterministic multiplicative noise. Two instances with different
/// seeds model "profiled" vs "actual" kernel times (see DESIGN.md §3).
class AnalyticCostModel {
 public:
  AnalyticCostModel(DeviceSpec device, NoiseSource noise);

  /// Forward time of one layer at `batch` samples, in ms. `batch` may be
  /// fractional (replicated stages process B/r samples).
  [[nodiscard]] double fwd_ms(const LayerDesc& layer, double batch) const;

  /// Backward time (bwd_flop_factor x forward FLOPs + backward overhead).
  [[nodiscard]] double bwd_ms(const LayerDesc& layer, double batch) const;

  /// Default fraction of device peak attained by a layer kind's kernels.
  [[nodiscard]] static double default_efficiency(LayerKind kind);

  [[nodiscard]] const DeviceSpec& device() const { return device_; }
  [[nodiscard]] const NoiseSource& noise() const { return noise_; }

 private:
  [[nodiscard]] double rate_gflop_per_ms(const LayerDesc& layer) const;
  [[nodiscard]] double jitter(const LayerDesc& layer, double batch,
                              bool backward) const;

  DeviceSpec device_;
  NoiseSource noise_;
};

}  // namespace dpipe
