#include "profiler/profile_db.h"

#include <algorithm>

namespace dpipe {

std::vector<double> default_batch_grid() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256};
}

ProfileDb::ProfileDb(const ModelDesc& model, const AnalyticCostModel& cost,
                     std::vector<double> batch_grid)
    : model_(model), batch_grid_(std::move(batch_grid)) {
  require(!batch_grid_.empty(), "batch grid must be non-empty");
  require(std::is_sorted(batch_grid_.begin(), batch_grid_.end()) &&
              std::adjacent_find(batch_grid_.begin(), batch_grid_.end()) ==
                  batch_grid_.end(),
          "batch grid must be strictly increasing");
  require(batch_grid_.front() > 0.0, "batch grid must be positive");
  validate(model_);

  const std::size_t grid = batch_grid_.size();
  components_.resize(model_.components.size());
  for (std::size_t ci = 0; ci < model_.components.size(); ++ci) {
    const ComponentDesc& comp = model_.components[ci];
    ComponentProfile& prof = components_[ci];
    const std::size_t num_layers = comp.layers.size();
    prof.layers.resize(num_layers);
    prof.prefix_fwd.assign(grid, std::vector<double>(num_layers + 1, 0.0));
    prof.prefix_bwd.assign(grid, std::vector<double>(num_layers + 1, 0.0));
    prof.prefix_grad_mb.assign(num_layers + 1, 0.0);
    prof.prefix_param_mb.assign(num_layers + 1, 0.0);
    prof.prefix_act_mb.assign(num_layers + 1, 0.0);
    for (std::size_t li = 0; li < num_layers; ++li) {
      const LayerDesc& l = comp.layers[li];
      LayerSamples& samples = prof.layers[li];
      samples.fwd_ms.resize(grid);
      samples.bwd_ms.resize(grid);
      for (std::size_t g = 0; g < grid; ++g) {
        samples.fwd_ms[g] = cost.fwd_ms(l, batch_grid_[g]);
        samples.bwd_ms[g] = cost.bwd_ms(l, batch_grid_[g]);
        prof.prefix_fwd[g][li + 1] = prof.prefix_fwd[g][li] + samples.fwd_ms[g];
        prof.prefix_bwd[g][li + 1] = prof.prefix_bwd[g][li] + samples.bwd_ms[g];
      }
      prof.prefix_grad_mb[li + 1] =
          prof.prefix_grad_mb[li] + l.effective_grad_mb();
      prof.prefix_param_mb[li + 1] = prof.prefix_param_mb[li] + l.param_mb;
      prof.prefix_act_mb[li + 1] = prof.prefix_act_mb[li] + l.act_mb;
    }
  }
}

ProfileDb::Segment ProfileDb::segment(double batch) const {
  // Binary search for the bracketing grid segment; clamp to the outermost
  // segments for extrapolation.
  const auto& grid = batch_grid_;
  std::size_t hi =
      std::upper_bound(grid.begin(), grid.end(), batch) - grid.begin();
  hi = std::clamp<std::size_t>(hi, 1, grid.size() - 1);
  const std::size_t lo = hi - 1;
  return {lo, hi, (batch - grid[lo]) / (grid[hi] - grid[lo])};
}

double ProfileDb::interpolate(const std::vector<double>& samples,
                              double batch) const {
  require(batch >= 0.0, "batch must be non-negative");
  if (batch == 0.0) {
    return 0.0;
  }
  if (batch_grid_.size() == 1) {
    return samples[0] * batch / batch_grid_[0];
  }
  const Segment s = segment(batch);
  const double value = samples[s.lo] + s.t * (samples[s.hi] - samples[s.lo]);
  return std::max(0.0, value);
}

double ProfileDb::interpolate_range(
    const std::vector<std::vector<double>>& prefix, int lo, int hi,
    double batch) const {
  require(batch >= 0.0, "batch must be non-negative");
  if (batch_grid_.size() == 1) {
    return (prefix[0][hi] - prefix[0][lo]) * batch / batch_grid_[0];
  }
  const Segment s = segment(batch);
  const double at_lo = prefix[s.lo][hi] - prefix[s.lo][lo];
  const double at_hi = prefix[s.hi][hi] - prefix[s.hi][lo];
  return std::max(0.0, at_lo + s.t * (at_hi - at_lo));
}

double ProfileDb::fwd_ms(int component, int layer, double batch) const {
  check_range(component, layer, layer + 1);
  return interpolate(components_[component].layers[layer].fwd_ms, batch);
}

double ProfileDb::bwd_ms(int component, int layer, double batch) const {
  check_range(component, layer, layer + 1);
  return interpolate(components_[component].layers[layer].bwd_ms, batch);
}

double ProfileDb::fwd_range_ms(int component, int lo, int hi,
                               double batch) const {
  check_range(component, lo, hi);
  if (lo == hi || batch == 0.0) {
    return 0.0;
  }
  return interpolate_range(components_[component].prefix_fwd, lo, hi, batch);
}

double ProfileDb::bwd_range_ms(int component, int lo, int hi,
                               double batch) const {
  check_range(component, lo, hi);
  if (lo == hi || batch == 0.0) {
    return 0.0;
  }
  return interpolate_range(components_[component].prefix_bwd, lo, hi, batch);
}

double ProfileDb::grad_range_mb(int component, int lo, int hi) const {
  check_range(component, lo, hi);
  const ComponentProfile& prof = components_[component];
  return prof.prefix_grad_mb[hi] - prof.prefix_grad_mb[lo];
}

double ProfileDb::param_range_mb(int component, int lo, int hi) const {
  check_range(component, lo, hi);
  const ComponentProfile& prof = components_[component];
  return prof.prefix_param_mb[hi] - prof.prefix_param_mb[lo];
}

double ProfileDb::act_range_mb(int component, int lo, int hi) const {
  check_range(component, lo, hi);
  const ComponentProfile& prof = components_[component];
  return prof.prefix_act_mb[hi] - prof.prefix_act_mb[lo];
}

const LayerDesc& ProfileDb::layer(int component, int layer) const {
  check_range(component, layer, layer + 1);
  return model_.components[component].layers[layer];
}

void ProfileDb::check_range(int component, int lo, int hi) const {
  require(component >= 0 &&
              component < static_cast<int>(model_.components.size()),
          "component index out of range");
  const int num_layers = model_.components[component].num_layers();
  require(lo >= 0 && lo <= hi && hi <= num_layers,
          "layer range out of bounds");
}

}  // namespace dpipe
