#include "profiler/cost_model.h"

#include <cmath>

#include "common/units.h"

namespace dpipe {

AnalyticCostModel::AnalyticCostModel(DeviceSpec device, NoiseSource noise)
    : device_(std::move(device)), noise_(noise) {
  require(device_.peak_tflops > 0.0, "device peak must be positive");
}

double AnalyticCostModel::default_efficiency(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return 0.30;
    case LayerKind::kHighResConv:
      return 0.12;  // Large-spatial convs are memory-bound.
    case LayerKind::kResBlock:
      return 0.30;
    case LayerKind::kAttention:
      return 0.25;
    case LayerKind::kTransformerBlock:
      return 0.45;
    case LayerKind::kLinear:
      return 0.50;
    case LayerKind::kNorm:
      return 0.05;
    case LayerKind::kEmbedding:
      return 0.10;
    case LayerKind::kUpsample:
    case LayerKind::kDownsample:
      return 0.20;
    case LayerKind::kOther:
      return 0.25;
  }
  return 0.25;
}

double AnalyticCostModel::rate_gflop_per_ms(const LayerDesc& layer) const {
  const double eff =
      layer.efficiency > 0.0 ? layer.efficiency : default_efficiency(layer.kind);
  // TFLOP/s == GFLOP/ms (see common/units.h).
  return eff * device_.peak_tflops;
}

double AnalyticCostModel::jitter(const LayerDesc& layer, double batch,
                                 bool backward) const {
  // Quantize fractional batches so the key is stable.
  const auto batch_key = static_cast<std::uint64_t>(std::llround(batch * 16.0));
  const std::uint64_t key = NoiseSource::key(
      NoiseSource::hash(layer.name), batch_key, backward ? 1u : 0u);
  return noise_.multiplier(key);
}

double AnalyticCostModel::fwd_ms(const LayerDesc& layer, double batch) const {
  require(batch >= 0.0, "batch must be non-negative");
  if (batch == 0.0) {
    return 0.0;
  }
  const double compute =
      compute_ms(batch * layer.fwd_gflop, rate_gflop_per_ms(layer));
  return (compute + layer.overhead_fwd_ms) * jitter(layer, batch, false);
}

double AnalyticCostModel::bwd_ms(const LayerDesc& layer, double batch) const {
  require(batch >= 0.0, "batch must be non-negative");
  if (batch == 0.0) {
    return 0.0;
  }
  const double compute = compute_ms(
      batch * layer.fwd_gflop * layer.bwd_flop_factor, rate_gflop_per_ms(layer));
  const double overhead = layer.overhead_fwd_ms + layer.overhead_bwd_ms;
  return (compute + overhead) * jitter(layer, batch, true);
}

}  // namespace dpipe
