#include <numeric>

#include "baselines/baselines.h"
#include "common/units.h"
#include "engine/memory.h"

namespace dpipe {

namespace {

struct DdpCompute {
  double non_trainable_fwd_ms = 0.0;
  double trainable_fwd_ms = 0.0;  ///< Incl. expected self-cond extra pass.
  double trainable_bwd_ms = 0.0;
  double grad_mb = 0.0;
  double param_mb = 0.0;
};

DdpCompute ddp_compute(const ProfileDb& db, double local_batch,
                       int only_backbone) {
  const ModelDesc& model = db.model();
  DdpCompute out;
  const double sc_factor =
      model.self_conditioning ? 1.0 + model.self_cond_prob : 1.0;
  for (std::size_t ci = 0; ci < model.components.size(); ++ci) {
    const ComponentDesc& comp = model.components[ci];
    const int L = comp.num_layers();
    const int c = static_cast<int>(ci);
    if (!comp.trainable) {
      if (only_backbone < 0) {
        out.non_trainable_fwd_ms += db.fwd_range_ms(c, 0, L, local_batch);
      }
      continue;
    }
    if (only_backbone >= 0 && model.backbone_ids[only_backbone] != c) {
      continue;
    }
    out.trainable_fwd_ms +=
        sc_factor * db.fwd_range_ms(c, 0, L, local_batch);
    out.trainable_bwd_ms += db.bwd_range_ms(c, 0, L, local_batch);
    out.grad_mb += db.grad_range_mb(c, 0, L);
    out.param_mb += db.param_range_mb(c, 0, L);
  }
  return out;
}

std::vector<int> all_ranks(int n) {
  std::vector<int> ranks(n);
  std::iota(ranks.begin(), ranks.end(), 0);
  return ranks;
}

}  // namespace

BaselineReport run_ddp(const ProfileDb& db, const CommModel& comm,
                       double global_batch, const DdpOptions& opts) {
  require(global_batch > 0.0, "global batch must be positive");
  const int world = opts.num_devices > 0 ? opts.num_devices
                                         : comm.cluster().world_size();
  const double local_batch = global_batch / world;
  const DdpCompute c = ddp_compute(db, local_batch, opts.only_backbone);

  const double sync =
      comm.allreduce_ms(kGradCommBytesFactor * c.grad_mb, all_ranks(world)) +
      opts.bucket_count * opts.bucket_overhead_ms;
  const double exposed_sync =
      std::max(opts.exposed_floor * sync,
               sync - opts.overlap_credit * c.trainable_bwd_ms);
  const double optimizer_ms =
      transfer_ms(3.0 * c.param_mb, comm.cluster().device.mem_bw_gbps);
  const double iteration = c.non_trainable_fwd_ms + c.trainable_fwd_ms +
                           c.trainable_bwd_ms + exposed_sync + optimizer_ms;

  BaselineReport report;
  report.name = "DeepSpeed";
  report.iteration_ms = iteration;
  report.samples_per_second = global_batch / ms_to_seconds(iteration);
  report.sync_ms = sync;
  report.sync_fraction = std::min(sync, iteration) / iteration;
  const MemoryReport memory =
      estimate_data_parallel_memory(db, local_batch, world);
  report.peak_memory_gb = memory.peak_gb;
  report.memory_feasible = memory.fits(comm.cluster().device.memory_gb);
  return report;
}

BaselineReport run_zero3(const ProfileDb& db, const CommModel& comm,
                         double global_batch, const DdpOptions& opts) {
  require(global_batch > 0.0, "global batch must be positive");
  const int world = opts.num_devices > 0 ? opts.num_devices
                                         : comm.cluster().world_size();
  const double local_batch = global_batch / world;
  const DdpCompute c = ddp_compute(db, local_batch, opts.only_backbone);
  const std::vector<int> group = all_ranks(world);

  // ZeRO-3 gathers each layer's weights before forward AND backward and
  // reduce-scatters gradients: 3x the parameter volume in collectives,
  // partially overlapped with compute (prefetching).
  const double gather = 2.0 * comm.allgather_ms(c.param_mb, group);
  const double reduce =
      comm.reduce_scatter_ms(kGradCommBytesFactor * c.grad_mb, group);
  const double collectives =
      gather + reduce + opts.bucket_count * opts.bucket_overhead_ms;
  const double compute = c.trainable_fwd_ms + c.trainable_bwd_ms;
  const double exposed =
      std::max(opts.exposed_floor * collectives,
               collectives - opts.overlap_credit * compute);
  const double optimizer_ms =
      transfer_ms(3.0 * c.param_mb / world,
                  comm.cluster().device.mem_bw_gbps);
  const double iteration =
      c.non_trainable_fwd_ms + compute + exposed + optimizer_ms;

  BaselineReport report;
  report.name = "DeepSpeed-ZeRO-3";
  report.iteration_ms = iteration;
  report.samples_per_second = global_batch / ms_to_seconds(iteration);
  report.sync_ms = collectives;
  report.sync_fraction = std::min(collectives, iteration) / iteration;
  const MemoryReport memory = estimate_zero3_memory(db, local_batch, world);
  report.peak_memory_gb = memory.peak_gb;
  report.memory_feasible = memory.fits(comm.cluster().device.memory_gb);
  return report;
}

}  // namespace dpipe
