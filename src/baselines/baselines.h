#pragma once

#include <string>

#include "cluster/comm_model.h"
#include "engine/engine.h"
#include "profiler/profile_db.h"

namespace dpipe {

/// Common result type for every training system compared in §6.
struct BaselineReport {
  std::string name;
  double iteration_ms = 0.0;
  double samples_per_second = 0.0;
  double bubble_ratio = 0.0;   ///< Pipeline systems only.
  double sync_ms = 0.0;        ///< Parameter synchronization time.
  double sync_fraction = 0.0;  ///< sync / iteration (paper Table 2).
  double peak_memory_gb = 0.0;
  bool memory_feasible = true;
};

struct DdpOptions {
  /// Gradient bucket count: each bucket pays a collective launch overhead.
  int bucket_count = 25;
  double bucket_overhead_ms = 1.0;
  /// Fraction of backward time the bucketed allreduce overlaps with.
  double overlap_credit = 0.3;
  /// Fraction of the collective time that stays exposed no matter how long
  /// the backward pass is (bucket serialization, blocking fp32 copies) —
  /// without it, large local batches would hide synchronization entirely,
  /// which real DeepSpeed does not achieve (paper Fig. 13).
  double exposed_floor = 0.7;
  /// Restrict to a single backbone (CDM helpers); -1 = all trainable parts.
  int only_backbone = -1;
  /// Devices actually used (CDM-P splits the cluster); 0 = whole cluster.
  int num_devices = 0;
};

/// DeepSpeed-style distributed data parallelism (vanilla DDP): every device
/// computes the full model at global_batch / N samples; gradients allreduce
/// across all devices, partially overlapped with backward.
[[nodiscard]] BaselineReport run_ddp(const ProfileDb& db,
                                     const CommModel& comm,
                                     double global_batch,
                                     const DdpOptions& opts = {});

/// ZeRO-3: parameters allgathered before each layer's forward and backward,
/// gradients reduce-scattered; memory sharded (Rajbhandari et al., 2021).
[[nodiscard]] BaselineReport run_zero3(const ProfileDb& db,
                                       const CommModel& comm,
                                       double global_batch,
                                       const DdpOptions& opts = {});

struct PipelineBaselineOptions {
  int num_stages = 2;       ///< GPipe is evaluated with S=2, M=4 (§6).
  int num_microbatches = 4;
  int group_size = 0;       ///< 0 = num_stages (one device per stage).
  int engine_iterations = 4;
  std::uint64_t actual_noise_seed = 0xAC7BA1;
};

/// GPipe (Huang et al., 2019): equal-layer stage partitioning, all-forward/
/// all-backward schedule, non-trainable part executed data-parallel outside
/// the pipeline (no bubble filling). Measured with the execution engine.
[[nodiscard]] BaselineReport run_gpipe_baseline(
    const ProfileDb& db, const CommModel& comm, double global_batch,
    const PipelineBaselineOptions& opts = {});

/// SPP-like (Luo et al., 2022): DP-optimized partitioning + FIFO-1F1B,
/// same hyper-parameter search as DiffusionPipe but no bubble filling.
[[nodiscard]] BaselineReport run_spp_baseline(
    const ProfileDb& db, const CommModel& comm, double global_batch,
    const PipelineBaselineOptions& opts = {});

/// Cascaded-diffusion data-parallel baselines (§6, Metrics):
/// DeepSpeed-S trains the backbones sequentially on all devices;
/// DeepSpeed-P trains them concurrently on evenly split device sets.
[[nodiscard]] BaselineReport run_deepspeed_s(const ProfileDb& db,
                                             const CommModel& comm,
                                             double per_backbone_batch,
                                             bool zero3 = false);
[[nodiscard]] BaselineReport run_deepspeed_p(const ProfileDb& db,
                                             const CommModel& comm,
                                             double per_backbone_batch,
                                             bool zero3 = false);

}  // namespace dpipe
