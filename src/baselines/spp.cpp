#include "baselines/baselines.h"
#include "core/planner/planner.h"
#include "engine/memory.h"

namespace dpipe {

BaselineReport run_spp_baseline(const ProfileDb& db, const CommModel& comm,
                                double global_batch,
                                const PipelineBaselineOptions& opts) {
  const ModelDesc& model = db.model();
  require(model.backbone_ids.size() == 1,
          "SPP does not support pipelining multiple models (§6)");

  // SPP = DP-optimized partitioning + FIFO-1F1B with the same
  // hyper-parameter search as DiffusionPipe, but without bubble filling:
  // the planner's fill-ablation mode is exactly that configuration.
  PlannerOptions popts;
  popts.global_batch = global_batch;
  popts.enable_fill = false;
  const Planner planner(model, comm.cluster(), popts);
  const Plan plan = planner.plan();

  const ExecutionEngine engine(planner.db(), comm);
  EngineOptions eopts;
  eopts.iterations = opts.engine_iterations;
  eopts.group_batch = global_batch / plan.config.data_parallel_degree;
  eopts.data_parallel_degree = plan.config.data_parallel_degree;
  eopts.actual_noise_seed = opts.actual_noise_seed;
  const EngineResult result = engine.run(plan.program, eopts);

  BaselineReport report;
  report.name = "SPP";
  report.iteration_ms = result.steady_iteration_ms;
  report.samples_per_second = result.samples_per_second;
  report.bubble_ratio = result.steady_bubble_ratio;
  const MemoryReport memory = estimate_pipeline_memory(
      planner.db(), plan.fill.filled_schedule, plan.partition_opts);
  report.peak_memory_gb = memory.peak_gb;
  report.memory_feasible = memory.fits(comm.cluster().device.memory_gb);
  return report;
}

}  // namespace dpipe
