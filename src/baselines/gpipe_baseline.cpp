#include "baselines/baselines.h"
#include "common/units.h"
#include "core/fill/filler.h"
#include "core/instr/instructions.h"
#include "core/schedule/schedule.h"
#include "engine/memory.h"

namespace dpipe {

BaselineReport run_gpipe_baseline(const ProfileDb& db, const CommModel& comm,
                                  double global_batch,
                                  const PipelineBaselineOptions& opts) {
  const ModelDesc& model = db.model();
  require(model.backbone_ids.size() == 1,
          "GPipe does not support pipelining multiple models (§6)");
  const int backbone = model.backbone_ids[0];
  const int L = model.components[backbone].num_layers();
  const int S = opts.num_stages;
  const int D = opts.group_size > 0 ? opts.group_size : S;
  const int world = comm.cluster().world_size();
  require(S >= 1 && S <= L, "invalid stage count");
  require(D % S == 0 && world % D == 0, "invalid group shape");
  const int dp = world / D;
  const int replicas = D / S;

  PartitionOptions popts;
  popts.num_stages = S;
  popts.num_microbatches = opts.num_microbatches;
  popts.group_size = D;
  popts.data_parallel_degree = dp;
  popts.microbatch_size = global_batch / dp / opts.num_microbatches;
  popts.self_conditioning = model.self_conditioning;
  popts.self_cond_prob = model.self_cond_prob;

  // GPipe's partition rule: equal layer counts per stage.
  std::vector<StagePlan> stages;
  int layer = 0;
  int chain = 0;
  for (int s = 0; s < S; ++s) {
    StagePlan stage;
    stage.layer_begin = layer;
    stage.layer_end = layer + (L - layer) / (S - s);
    stage.replicas = replicas;
    for (int r = 0; r < replicas; ++r) {
      stage.device_ranks.push_back(chain + r);
    }
    layer = stage.layer_end;
    chain += replicas;
    stages.push_back(std::move(stage));
  }

  const ScheduleBuilder builder(db, comm);
  const Schedule schedule = builder.build_gpipe(backbone, stages, popts);
  FillOptions fill_opts;
  fill_opts.training_batch = global_batch / dp;
  fill_opts.enable_fill = false;  // Baselines do not bubble-fill (§6).
  const FillResult fill = BubbleFiller(db).fill(schedule, fill_opts);
  const InstructionProgram program =
      generate_instructions(db, fill.filled_schedule, fill, popts);

  const ExecutionEngine engine(db, comm);
  EngineOptions eopts;
  eopts.iterations = opts.engine_iterations;
  eopts.group_batch = global_batch / dp;
  eopts.data_parallel_degree = dp;
  eopts.actual_noise_seed = opts.actual_noise_seed;
  const EngineResult result = engine.run(program, eopts);

  BaselineReport report;
  report.name = "GPipe";
  report.iteration_ms = result.steady_iteration_ms;
  report.samples_per_second = result.samples_per_second;
  report.bubble_ratio = result.steady_bubble_ratio;
  const MemoryReport memory =
      estimate_pipeline_memory(db, schedule, popts, /*gpipe_style=*/true);
  report.peak_memory_gb = memory.peak_gb;
  report.memory_feasible = memory.fits(comm.cluster().device.memory_gb);
  return report;
}

}  // namespace dpipe
