#include "baselines/baselines.h"
#include "common/units.h"

namespace dpipe {

namespace {

BaselineReport run_one_backbone(const ProfileDb& db, const CommModel& comm,
                                double batch, int backbone, int num_devices,
                                bool zero3) {
  DdpOptions opts;
  opts.only_backbone = backbone;
  opts.num_devices = num_devices;
  return zero3 ? run_zero3(db, comm, batch, opts)
               : run_ddp(db, comm, batch, opts);
}

}  // namespace

BaselineReport run_deepspeed_s(const ProfileDb& db, const CommModel& comm,
                               double per_backbone_batch, bool zero3) {
  const ModelDesc& model = db.model();
  require(model.backbone_ids.size() >= 2,
          "DeepSpeed-S applies to cascaded models");
  const int world = comm.cluster().world_size();
  // Sequential: each backbone trains on ALL devices; iteration times add
  // (§6, Metrics: total batch of all backbones / sum of iteration times).
  double total_iter = 0.0;
  double peak_mem = 0.0;
  bool feasible = true;
  for (std::size_t b = 0; b < model.backbone_ids.size(); ++b) {
    const BaselineReport r = run_one_backbone(
        db, comm, per_backbone_batch, static_cast<int>(b), world, zero3);
    total_iter += r.iteration_ms;
    peak_mem = std::max(peak_mem, r.peak_memory_gb);
    feasible = feasible && r.memory_feasible;
  }
  BaselineReport report;
  report.name = zero3 ? "DeepSpeed-ZeRO-3-S" : "DeepSpeed-S";
  report.iteration_ms = total_iter;
  report.samples_per_second =
      per_backbone_batch * static_cast<double>(model.backbone_ids.size()) /
      ms_to_seconds(total_iter);
  report.peak_memory_gb = peak_mem;
  report.memory_feasible = feasible;
  return report;
}

BaselineReport run_deepspeed_p(const ProfileDb& db, const CommModel& comm,
                               double per_backbone_batch, bool zero3) {
  const ModelDesc& model = db.model();
  const auto num_backbones = static_cast<int>(model.backbone_ids.size());
  require(num_backbones >= 2, "DeepSpeed-P applies to cascaded models");
  const int world = comm.cluster().world_size();
  require(world % num_backbones == 0,
          "device count must divide evenly across backbones");
  const int per_set = world / num_backbones;
  // Parallel: each backbone trains on its own device set; throughput is the
  // sum of batch/iteration over backbones (§6, Metrics).
  double slowest_iter = 0.0;
  double throughput = 0.0;
  double peak_mem = 0.0;
  bool feasible = true;
  for (int b = 0; b < num_backbones; ++b) {
    const BaselineReport r =
        run_one_backbone(db, comm, per_backbone_batch, b, per_set, zero3);
    slowest_iter = std::max(slowest_iter, r.iteration_ms);
    throughput += r.samples_per_second;
    peak_mem = std::max(peak_mem, r.peak_memory_gb);
    feasible = feasible && r.memory_feasible;
  }
  BaselineReport report;
  report.name = zero3 ? "DeepSpeed-ZeRO-3-P" : "DeepSpeed-P";
  report.iteration_ms = slowest_iter;
  report.samples_per_second = throughput;
  report.peak_memory_gb = peak_mem;
  report.memory_feasible = feasible;
  return report;
}

}  // namespace dpipe
