#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace dpipe {

/// A 128-bit content fingerprint: two independent 64-bit FNV-1a style
/// streams over the same bytes. Used to key whole-plan cache entries and
/// name on-disk plan files; every consumer that must be collision-proof
/// (the in-memory plan cache, plan-store load verification) additionally
/// compares the canonical request bytes, so the fingerprint only has to be
/// collision-resistant, not cryptographic.
struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex characters (hi then lo), the on-disk/wire spelling.
  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = kDigits[(hi >> (4 * i)) & 0xF];
      out[31 - i] = kDigits[(lo >> (4 * i)) & 0xF];
    }
    return out;
  }

  /// Parses the hex() spelling. Throws std::invalid_argument on anything
  /// that is not exactly 32 hex characters.
  [[nodiscard]] static Fingerprint from_hex(std::string_view text) {
    require(text.size() == 32, "fingerprint must be 32 hex characters");
    const auto nibble = [](char c) -> std::uint64_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint64_t>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<std::uint64_t>(c - 'a' + 10);
      require(false, "invalid fingerprint hex digit");
      return 0;
    };
    Fingerprint fp;
    for (int i = 0; i < 16; ++i) {
      fp.hi = (fp.hi << 4) | nibble(text[static_cast<std::size_t>(i)]);
      fp.lo = (fp.lo << 4) | nibble(text[static_cast<std::size_t>(16 + i)]);
    }
    return fp;
  }
};

/// FNV-1a over `bytes` with a caller-chosen offset basis (the standard
/// basis for `lo`, a perturbed one for `hi`).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes,
                                         std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

[[nodiscard]] inline Fingerprint fingerprint_bytes(std::string_view bytes) {
  Fingerprint fp;
  fp.lo = fnv1a(bytes, 14695981039346656037ull);
  // Independent stream: different basis plus a final avalanche so the two
  // words do not degenerate to a constant XOR of each other.
  std::uint64_t h = fnv1a(bytes, 14695981039346656037ull ^
                                     0x9E3779B97F4A7C15ull);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  fp.hi = h;
  return fp;
}

}  // namespace dpipe
