#pragma once

#include <cstddef>
#include <vector>

namespace dpipe {

/// A point tracked by the partitioner's dynamic program. The paper's
/// objective (Eqn. 2) is `(M + 2S - 2) * W + Y`, but the recursion composes
/// both W and Y with `max`, so a scalar DP is not exact: two candidate
/// sub-solutions can trade W against Y. Each DP state therefore keeps the
/// Pareto frontier of achievable (W, Y) pairs.
struct ParetoPoint {
  double w = 0.0;       ///< T0 so far (max over placed stages).
  double y = 0.0;       ///< T0^{S-C} so far (max over placed stages).
  std::size_t tag = 0;  ///< Opaque backpointer for plan reconstruction.

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

/// Maintains a set of mutually non-dominated (w, y) points (smaller is
/// better in both coordinates). Insertion is linear in the frontier size,
/// which stays small in practice (W and Y are strongly correlated).
class ParetoFrontier {
 public:
  /// Inserts `p` unless an existing point dominates it; removes points that
  /// `p` dominates. Returns true if the point was inserted.
  bool insert(ParetoPoint p);

  [[nodiscard]] const std::vector<ParetoPoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Returns the point minimizing `coeff_w * w + y`, which is how the
  /// frontier is finally scalarized by Eqn. (2). Frontier must be non-empty.
  [[nodiscard]] ParetoPoint best(double coeff_w) const;

 private:
  std::vector<ParetoPoint> points_;
};

}  // namespace dpipe
