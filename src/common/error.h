#pragma once

#include <stdexcept>
#include <string>

namespace dpipe {

/// Throws std::invalid_argument when a caller-supplied precondition fails.
/// Use for argument validation on public API boundaries.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

/// Throws std::logic_error when an internal invariant is violated.
/// Use for "this cannot happen unless the library itself is buggy".
inline void ensure(bool condition, const std::string& message) {
  if (!condition) {
    throw std::logic_error(message);
  }
}

namespace detail {

inline std::string located(const char* file, int line,
                           const std::string& message) {
  std::string text(file);
  // Keep paths readable: trim everything before the last "src/" so messages
  // are stable across build directories.
  const std::size_t anchor = text.rfind("src/");
  if (anchor != std::string::npos) {
    text.erase(0, anchor);
  }
  text += ':';
  text += std::to_string(line);
  text += ": ";
  text += message;
  return text;
}

inline void require_at(bool condition, const std::string& message,
                       const char* file, int line) {
  if (!condition) {
    throw std::invalid_argument(located(file, line, message));
  }
}

inline void ensure_at(bool condition, const std::string& message,
                      const char* file, int line) {
  if (!condition) {
    throw std::logic_error(located(file, line, message));
  }
}

}  // namespace detail
}  // namespace dpipe

/// Precondition check that prepends file:line context to the thrown
/// std::invalid_argument. Prefer over bare require() in library code so
/// failures in deep call stacks are attributable.
#define DPIPE_REQUIRE(cond, msg) \
  ::dpipe::detail::require_at(static_cast<bool>(cond), (msg), __FILE__, \
                              __LINE__)

/// Invariant check that prepends file:line context to the thrown
/// std::logic_error.
#define DPIPE_ENSURE(cond, msg) \
  ::dpipe::detail::ensure_at(static_cast<bool>(cond), (msg), __FILE__, \
                             __LINE__)
