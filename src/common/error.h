#pragma once

#include <stdexcept>
#include <string>

namespace dpipe {

/// Throws std::invalid_argument when a caller-supplied precondition fails.
/// Use for argument validation on public API boundaries.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

/// Throws std::logic_error when an internal invariant is violated.
/// Use for "this cannot happen unless the library itself is buggy".
inline void ensure(bool condition, const std::string& message) {
  if (!condition) {
    throw std::logic_error(message);
  }
}

}  // namespace dpipe
