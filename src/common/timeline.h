#pragma once

#include <vector>

namespace dpipe {

/// Half-open time interval [start, end) in milliseconds.
struct Span {
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double length() const { return end - start; }
  friend bool operator==(const Span&, const Span&) = default;
};

/// Sorts spans by start time and merges overlapping/adjacent ones.
[[nodiscard]] std::vector<Span> normalize_spans(std::vector<Span> spans);

/// Total length of a (not necessarily normalized) span list.
[[nodiscard]] double total_length(const std::vector<Span>& spans);

/// Complements `busy` within [0, horizon): the idle spans of one device.
/// `busy` need not be normalized.
[[nodiscard]] std::vector<Span> complement_spans(std::vector<Span> busy,
                                                 double horizon);

/// A maximal interval during which the *set* of idle devices is constant.
/// This matches the paper's definition of a pipeline bubble as a tuple
/// (start time, end time, idle devices).
struct IdleInterval {
  Span span;
  std::vector<int> idle_devices;  ///< Sorted device indices idle over `span`.
};

/// Sweeps per-device idle spans and returns maximal constant-idle-set
/// intervals, in chronological order. Intervals with an empty idle set are
/// omitted. `idle_per_device[d]` must be normalized (disjoint, sorted).
[[nodiscard]] std::vector<IdleInterval> sweep_idle_intervals(
    const std::vector<std::vector<Span>>& idle_per_device, double horizon);

}  // namespace dpipe
