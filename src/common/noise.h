#pragma once

#include <cstdint>
#include <string_view>

namespace dpipe {

/// Deterministic multiplicative noise used to emulate measurement jitter.
///
/// The planner consumes "profiled" layer times while the execution engine
/// consumes "actual" layer times; both come from the same analytic cost model
/// but with different noise seeds. This reproduces the profiled-vs-actual gap
/// the paper cites as the main source of residual (unfilled) bubble time.
class NoiseSource {
 public:
  /// `amplitude` is the maximum relative deviation, e.g. 0.02 for +/-2%.
  explicit NoiseSource(std::uint64_t seed, double amplitude = 0.02);

  /// Returns a multiplier in [1-amplitude, 1+amplitude], a pure function of
  /// (seed, key). The same key always yields the same multiplier.
  [[nodiscard]] double multiplier(std::uint64_t key) const;

  /// Convenience: build a stable key from mixed identifiers.
  [[nodiscard]] static std::uint64_t key(std::uint64_t a, std::uint64_t b,
                                         std::uint64_t c = 0);

  /// Hashes a string into a key component (FNV-1a).
  [[nodiscard]] static std::uint64_t hash(std::string_view text);

  [[nodiscard]] double amplitude() const { return amplitude_; }

 private:
  std::uint64_t seed_;
  double amplitude_;
};

}  // namespace dpipe
