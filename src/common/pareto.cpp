#include "common/pareto.h"

#include <algorithm>

#include "common/error.h"

namespace dpipe {

namespace {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.w <= b.w && a.y <= b.y;
}

}  // namespace

bool ParetoFrontier::insert(ParetoPoint p) {
  for (const ParetoPoint& q : points_) {
    if (dominates(q, p)) {
      return false;
    }
  }
  std::erase_if(points_, [&](const ParetoPoint& q) { return dominates(p, q); });
  points_.push_back(p);
  return true;
}

ParetoPoint ParetoFrontier::best(double coeff_w) const {
  ensure(!points_.empty(), "ParetoFrontier::best on empty frontier");
  return *std::min_element(points_.begin(), points_.end(),
                           [&](const ParetoPoint& a, const ParetoPoint& b) {
                             return coeff_w * a.w + a.y < coeff_w * b.w + b.y;
                           });
}

}  // namespace dpipe
