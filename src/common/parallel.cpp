#include "common/parallel.h"

#include <cstdlib>

#include "common/error.h"

namespace dpipe {

namespace {

thread_local bool t_in_parallel_region = false;

/// Marks the current thread as inside a batch for the guard's lifetime.
struct ParallelRegionGuard {
  bool previous = t_in_parallel_region;
  ParallelRegionGuard() { t_in_parallel_region = true; }
  ~ParallelRegionGuard() { t_in_parallel_region = previous; }
};

}  // namespace

bool in_parallel_region() { return t_in_parallel_region; }

int default_thread_count() {
  if (const char* env = std::getenv("DPIPE_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int resolved = num_threads <= 0 ? default_thread_count() : num_threads;
  workers_.reserve(static_cast<std::size_t>(resolved - 1));
  for (int i = 1; i < resolved; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) {
        return;
      }
      seen_epoch = epoch_;
      batch = batch_;
    }
    run_batch(batch);
  }
}

void ThreadPool::run_batch(const std::shared_ptr<Batch>& batch) {
  const ParallelRegionGuard region_guard;
  for (;;) {
    const std::size_t index = batch->next.fetch_add(1);
    if (index >= batch->total) {
      return;
    }
    if (!batch->cancelled.load()) {
      try {
        (*batch->fn)(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (batch->error == nullptr) {
          batch->error = std::current_exception();
        }
        batch->cancelled.store(true);
      }
    }
    if (batch->completed.fetch_add(1) + 1 == batch->total) {
      // Wake the caller; the empty critical section orders the wakeup
      // after the caller entered its wait.
      { const std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->total = n;
  batch->fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DPIPE_REQUIRE(batch_ == nullptr, "parallel_for is not reentrant");
    batch_ = batch;
    ++epoch_;
  }
  work_cv_.notify_all();
  run_batch(batch);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [&] { return batch->completed.load() == batch->total; });
    batch_ = nullptr;
    error = batch->error;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

}  // namespace dpipe
