#pragma once

namespace dpipe {

// The library uses plain doubles with unit conventions fixed across all
// modules, documented once here:
//   time        : milliseconds (ms)
//   data size   : megabytes (MB)
//   bandwidth   : gigabytes per second (GB/s)
//   compute     : gigaflops (GFLOP) per sample; rates in TFLOP/s
//   memory      : gigabytes (GB)

/// Converts a transfer of `mega_bytes` MB over a link of `giga_bytes_per_s`
/// GB/s into milliseconds.
inline double transfer_ms(double mega_bytes, double giga_bytes_per_s) {
  // MB / (GB/s) = 1e6 B / (1e9 B/s) = 1e-3 s = 1 ms per unit ratio.
  return mega_bytes / giga_bytes_per_s;
}

/// Converts `gflop` GFLOP executed at `tflops` TFLOP/s into milliseconds.
inline double compute_ms(double gflop, double tflops) {
  // GFLOP / (TFLOP/s) = 1e9 / 1e12 s = 1e-3 s = 1 ms per unit ratio.
  return gflop / tflops;
}

inline double seconds_to_ms(double s) { return s * 1e3; }
inline double ms_to_seconds(double ms) { return ms * 1e-3; }

}  // namespace dpipe
