#include "common/timeline.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"

namespace dpipe {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

std::vector<Span> normalize_spans(std::vector<Span> spans) {
  std::erase_if(spans, [](const Span& s) { return s.length() <= kEps; });
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.start < b.start; });
  std::vector<Span> merged;
  for (const Span& s : spans) {
    if (!merged.empty() && s.start <= merged.back().end + kEps) {
      merged.back().end = std::max(merged.back().end, s.end);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

double total_length(const std::vector<Span>& spans) {
  double sum = 0.0;
  for (const Span& s : normalize_spans(spans)) {
    sum += s.length();
  }
  return sum;
}

std::vector<Span> complement_spans(std::vector<Span> busy, double horizon) {
  require(horizon >= 0.0, "horizon must be non-negative");
  const std::vector<Span> norm = normalize_spans(std::move(busy));
  std::vector<Span> idle;
  double cursor = 0.0;
  for (const Span& s : norm) {
    const double begin = std::clamp(s.start, 0.0, horizon);
    if (begin - cursor > kEps) {
      idle.push_back({cursor, begin});
    }
    cursor = std::max(cursor, std::min(s.end, horizon));
  }
  if (horizon - cursor > kEps) {
    idle.push_back({cursor, horizon});
  }
  return idle;
}

std::vector<IdleInterval> sweep_idle_intervals(
    const std::vector<std::vector<Span>>& idle_per_device, double horizon) {
  // Event sweep: +1 at idle-span start, -1 at idle-span end, per device.
  // Between consecutive event times the idle set is constant by construction.
  std::map<double, std::vector<std::pair<int, bool>>> events;
  for (int d = 0; d < static_cast<int>(idle_per_device.size()); ++d) {
    for (const Span& s : idle_per_device[d]) {
      if (s.length() <= kEps) {
        continue;
      }
      events[std::min(s.start, horizon)].emplace_back(d, true);
      events[std::min(s.end, horizon)].emplace_back(d, false);
    }
  }
  std::vector<IdleInterval> out;
  std::set<int> idle_now;
  double prev_time = 0.0;
  auto flush = [&](double now) {
    if (now - prev_time > kEps && !idle_now.empty()) {
      IdleInterval iv;
      iv.span = {prev_time, now};
      iv.idle_devices.assign(idle_now.begin(), idle_now.end());
      out.push_back(std::move(iv));
    }
    prev_time = now;
  };
  for (const auto& [time, changes] : events) {
    flush(time);
    for (const auto& [device, becomes_idle] : changes) {
      if (becomes_idle) {
        idle_now.insert(device);
      } else {
        idle_now.erase(device);
      }
    }
  }
  flush(horizon);
  return out;
}

}  // namespace dpipe
