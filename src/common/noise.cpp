#include "common/noise.h"

#include "common/error.h"

namespace dpipe {

namespace {

// SplitMix64: small, fast, well-distributed 64-bit mixer.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

NoiseSource::NoiseSource(std::uint64_t seed, double amplitude)
    : seed_(seed), amplitude_(amplitude) {
  require(amplitude >= 0.0 && amplitude < 1.0,
          "noise amplitude must be in [0, 1)");
}

double NoiseSource::multiplier(std::uint64_t key) const {
  const std::uint64_t h = mix(seed_ ^ mix(key));
  // Map to [0, 1) with 53-bit precision, then to [1-a, 1+a].
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 + amplitude_ * (2.0 * unit - 1.0);
}

std::uint64_t NoiseSource::key(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  return mix(a) ^ mix(mix(b) + 0x632be59bd9b4e019ULL) ^
         mix(mix(c) + 0x1d8e4e27c47d124fULL);
}

std::uint64_t NoiseSource::hash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dpipe
