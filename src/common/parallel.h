#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dpipe {

/// Thread count used by parallel algorithms when the caller does not pin
/// one: the DPIPE_THREADS environment variable if set to a positive
/// integer, otherwise std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] int default_thread_count();

/// True while the calling thread is executing inside a ThreadPool batch
/// (as a worker or as the caller participating in its own parallel_for).
/// parallel_for is not reentrant, so code that may run both standalone and
/// inside a batch (the runtime's intra-op kernels) uses this to fall back
/// to its inline path instead of touching any pool.
[[nodiscard]] bool in_parallel_region();

/// A small fork-join thread pool for data-parallel host-side work (the
/// planner's (S, M, D) grid search). Workers are started once and reused
/// across parallel_for calls; the calling thread participates in every
/// batch, so a pool of size 1 runs everything inline with no worker
/// threads and no synchronization on the work items.
///
/// Determinism contract: parallel_for(n, fn) invokes fn(i) exactly once for
/// every i in [0, n); which thread runs which index is unspecified, so fn
/// must only write to per-index state (e.g. results[i]). Under that
/// contract the result of a parallel_for is bit-identical for any pool
/// size, which the planner's parity tests rely on.
class ThreadPool {
 public:
  /// num_threads <= 0 selects default_thread_count().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (worker threads + the calling thread).
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(i) for every i in [0, n), blocking until all are done. The
  /// first exception thrown by fn is rethrown here (remaining indices are
  /// skipped once an exception is recorded). Not reentrant: fn must not
  /// call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One parallel_for invocation, shared between the caller and workers.
  struct Batch {
    std::size_t total = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};       ///< Next index to claim.
    std::atomic<std::size_t> completed{0};  ///< Indices finished/skipped.
    std::atomic<bool> cancelled{false};     ///< Set on first exception.
    std::exception_ptr error;               ///< Guarded by the pool mutex.
  };

  void worker_loop();
  void run_batch(const std::shared_ptr<Batch>& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Signals workers: new batch/stop.
  std::condition_variable done_cv_;  ///< Signals the caller: batch done.
  std::shared_ptr<Batch> batch_;     ///< Active batch (null when idle).
  std::uint64_t epoch_ = 0;          ///< Bumped per batch so workers that
                                     ///< missed one don't rejoin it late.
  bool stop_ = false;
};

}  // namespace dpipe
