#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.h"

namespace dpipe {

/// Coarse layer taxonomy; the cost model assigns each kind a default
/// hardware efficiency (fraction of device peak attained by its kernels).
enum class LayerKind {
  kConv,              ///< Convolution block at tensor-core-friendly shapes.
  kHighResConv,       ///< Convolution at large spatial dims (memory-bound).
  kResBlock,          ///< Residual block (convs + norms + pointwise).
  kAttention,         ///< Self/cross attention block.
  kTransformerBlock,  ///< Full transformer block (attn + MLP).
  kLinear,            ///< Dense / projection.
  kNorm,              ///< Normalization (bandwidth-bound).
  kEmbedding,         ///< Embedding / encoding lookup.
  kUpsample,
  kDownsample,
  kOther,
};

[[nodiscard]] const char* to_string(LayerKind kind);

/// Inverse of to_string(LayerKind). Throws std::invalid_argument on an
/// unknown spelling.
[[nodiscard]] LayerKind layer_kind_from_string(const std::string& text);

/// Gradients are reduced in fp32 (DeepSpeed's default) while grad_mb
/// records the fp16 tensor size, so every gradient allreduce moves twice
/// the bytes. Applied uniformly to DiffusionPipe and the baselines.
inline constexpr double kGradCommBytesFactor = 2.0;

/// One schedulable unit of a component. Sizes are per *sample* and scale
/// linearly with batch size; times come from the cost model.
struct LayerDesc {
  std::string name;
  LayerKind kind = LayerKind::kOther;
  double fwd_gflop = 0.0;       ///< Forward GFLOPs per sample.
  double bwd_flop_factor = 2.0; ///< Backward FLOPs = factor * forward FLOPs.
  double param_mb = 0.0;        ///< Parameter bytes (MB).
  double grad_mb = -1.0;        ///< Gradient bytes synced in allreduce; -1
                                ///< means "same as param_mb". Frozen layers
                                ///< living inside a trainable pipeline (e.g.
                                ///< ControlNet's locked decoder) use 0.
  double output_mb = 0.0;       ///< Activation sent to the next layer, MB/sample
                                ///< (includes skip tensors crossing the cut).
  double act_mb = 0.0;          ///< Activations stashed for backward, MB/sample.
  double overhead_fwd_ms = 0.1; ///< Batch-independent kernel launch overhead.
  double overhead_bwd_ms = 0.0; ///< Extra overhead for the backward kernels.
  double efficiency = 0.0;      ///< >0 overrides the kind's default efficiency.

  [[nodiscard]] double effective_grad_mb() const {
    return grad_mb < 0.0 ? param_mb : grad_mb;
  }
};

/// A chain of layers executed in order. Trainable components (backbones) are
/// pipelined; non-trainable components (frozen encoders) are bubble-filled.
struct ComponentDesc {
  std::string name;
  bool trainable = false;
  std::vector<LayerDesc> layers;
  /// Indices of components (within the owning ModelDesc) whose *outputs*
  /// this component consumes. Must form a DAG.
  std::vector<int> deps;

  [[nodiscard]] int num_layers() const {
    return static_cast<int>(layers.size());
  }
  [[nodiscard]] double total_param_mb() const;
  [[nodiscard]] double total_fwd_gflop() const;
};

/// A diffusion model: backbones (trainable, pipelined, in cascade order)
/// plus frozen components (the non-trainable part).
struct ModelDesc {
  std::string name;
  std::vector<ComponentDesc> components;
  std::vector<int> backbone_ids;  ///< Trainable components in cascade order.
  bool self_conditioning = false;
  double self_cond_prob = 0.5;  ///< Probability self-conditioning activates.
  int image_size = 512;         ///< Input resolution (documentation only).

  [[nodiscard]] const ComponentDesc& backbone(int cascade_index) const;
  /// Indices of non-trainable components in a valid topological order.
  [[nodiscard]] std::vector<int> non_trainable_topo_order() const;
  [[nodiscard]] double trainable_param_mb() const;
};

/// Validates structural invariants (backbone ids in range and trainable,
/// deps form a DAG, layer sizes non-negative). Throws on violation.
void validate(const ModelDesc& model);

/// Writes the model in its canonical text form: every field, in a fixed
/// order, doubles at precision 17 (lossless round-trip). Equal models
/// produce equal bytes, so the text doubles as the fingerprint input for
/// the plan service ("model profile bytes") and as the wire encoding of a
/// plan request's model.
void write_canonical(std::ostream& out, const ModelDesc& model);

/// Parses write_canonical output. Throws std::invalid_argument on
/// malformed input. read_canonical_model then write_canonical is
/// byte-identity.
[[nodiscard]] ModelDesc read_canonical_model(std::istream& in);

}  // namespace dpipe
