#include "model/zoo.h"

#include <cmath>

#include "common/noise.h"

namespace dpipe {

namespace {

// Shorthand builder for a layer row. Sizes per sample, see LayerDesc.
LayerDesc layer(std::string name, LayerKind kind, double gflop,
                double param_mb, double out_mb, double act_mb, double eff,
                double overhead_fwd_ms = 0.1, double overhead_bwd_ms = 0.0,
                double grad_mb = -1.0) {
  LayerDesc l;
  l.name = std::move(name);
  l.kind = kind;
  l.fwd_gflop = gflop;
  l.param_mb = param_mb;
  l.grad_mb = grad_mb;
  l.output_mb = out_mb;
  l.act_mb = act_mb;
  l.efficiency = eff;
  l.overhead_fwd_ms = overhead_fwd_ms;
  l.overhead_bwd_ms = overhead_bwd_ms;
  return l;
}

// Rescales a field across all layers so its total hits a calibration target
// (keeps the per-layer *shape*, fixes the physically-known total).
void scale_total(std::vector<LayerDesc>& layers, double LayerDesc::*field,
                 double target_total) {
  double sum = 0.0;
  for (const LayerDesc& l : layers) {
    sum += l.*field;
  }
  ensure(sum > 0.0, "cannot scale a zero-total field");
  const double factor = target_total / sum;
  for (LayerDesc& l : layers) {
    l.*field *= factor;
  }
}

// ---------------------------------------------------------------------------
// Shared sub-model builders
// ---------------------------------------------------------------------------

// OpenCLIP-H text tower: 23 transformer blocks, width 1024, 77 tokens.
// ~2 GFLOP / block / sample => ~1 ms per layer at batch 64 on A100
// (the "short" layers 0..21 of the paper's Fig. 5).
ComponentDesc make_clip_text_encoder() {
  ComponentDesc c;
  c.name = "clip_text_encoder";
  c.trainable = false;
  for (int i = 0; i < 22; ++i) {
    c.layers.push_back(layer("text_block_" + std::to_string(i),
                             LayerKind::kTransformerBlock, 2.0, 25.0, 0.158,
                             0.4, 0.45, 0.08));
  }
  c.layers.push_back(layer("text_final_ln_proj", LayerKind::kNorm, 0.3, 4.0,
                           0.158, 0.2, 0.30, 0.08));
  return c;
}

// SD VAE encoder at 512x512 (fp32 kernels — hence the low efficiencies and
// the extra-long first-stage residual blocks, >400 ms at batch 64; the
// "moderate" and "extra-long" layers 22..41 of Fig. 5).
ComponentDesc make_vae_encoder() {
  ComponentDesc c;
  c.name = "vae_encoder";
  c.trainable = false;
  auto add = [&](std::string name, LayerKind k, double gf, double p,
                 double out, double eff) {
    c.layers.push_back(layer(std::move(name), k, gf, p, out, 1.0, eff, 0.15));
  };
  add("vae_conv_in", LayerKind::kHighResConv, 1.8, 0.02, 67.0, 0.12);
  add("vae_down0_res0", LayerKind::kHighResConv, 155.0, 0.6, 67.0, 0.065);
  add("vae_down0_res1", LayerKind::kHighResConv, 155.0, 0.6, 67.0, 0.075);
  add("vae_down0_down", LayerKind::kDownsample, 19.3, 0.3, 16.8, 0.12);
  add("vae_down1_res0", LayerKind::kHighResConv, 116.0, 1.7, 33.5, 0.10);
  add("vae_down1_res1", LayerKind::kHighResConv, 155.0, 2.3, 33.5, 0.14);
  add("vae_down1_down", LayerKind::kDownsample, 19.3, 1.2, 8.4, 0.14);
  add("vae_down2_res0", LayerKind::kConv, 87.0, 6.8, 16.8, 0.20);
  add("vae_down2_res1", LayerKind::kConv, 116.0, 9.0, 16.8, 0.20);
  add("vae_down2_down", LayerKind::kDownsample, 19.3, 4.7, 4.2, 0.25);
  add("vae_down3_res0", LayerKind::kConv, 38.7, 9.0, 4.2, 0.30);
  add("vae_down3_res1", LayerKind::kConv, 38.7, 9.0, 4.2, 0.30);
  add("vae_mid_res0", LayerKind::kConv, 38.7, 9.0, 4.2, 0.30);
  add("vae_mid_attn", LayerKind::kAttention, 21.0, 2.0, 4.2, 0.22);
  add("vae_mid_res1", LayerKind::kConv, 38.7, 9.0, 4.2, 0.30);
  add("vae_out_norm", LayerKind::kNorm, 2.0, 0.01, 4.2, 0.10);
  add("vae_out_conv", LayerKind::kConv, 8.0, 0.06, 0.065, 0.20);
  add("vae_quant_conv", LayerKind::kConv, 1.0, 0.001, 0.065, 0.15);
  // Calibration: non-trainable forward / trainable fwd+bwd ratio of Stable
  // Diffusion (paper Table 1: 38% @ batch 8 -> 44% @ batch 64).
  scale_total(c.layers, &LayerDesc::fwd_gflop, 888.0);
  return c;
}

// SD v2.1 U-Net backbone. 36 schedulable layers; GFLOPs/params/activations
// normalized to the published totals: ~1.7 TFLOP forward per sample at
// 64x64x4 latents, 865M parameters (1730 MB fp16), ~1.29 GB activations per
// sample (paper §2.3: 24.3 GB at batch 8 incl. 13.8 GB optimizer states).
ComponentDesc make_sd_unet(const std::string& name) {
  ComponentDesc c;
  c.name = name;
  c.trainable = true;
  auto add = [&](std::string n, double gf, double p, double out, double act) {
    c.layers.push_back(layer(std::move(n), LayerKind::kResBlock, gf, p, out,
                             act, 0.30, 0.6, 1.0));
  };
  add("conv_in", 9, 12, 5.2, 10);
  for (int i = 0; i < 2; ++i) {
    add("down0_restrans" + std::to_string(i), 85, 38, 7.9, 46);
  }
  add("down0_downsample", 10, 7, 4.2, 12);
  for (int i = 0; i < 2; ++i) {
    add("down1_restrans" + std::to_string(i), 78, 95, 5.5, 30);
  }
  add("down1_downsample", 9, 15, 3.5, 8);
  for (int i = 0; i < 2; ++i) {
    add("down2_restrans" + std::to_string(i), 72, 220, 2.8, 18);
  }
  add("down2_downsample", 8, 30, 2.2, 5);
  for (int i = 0; i < 2; ++i) {
    add("down3_res" + std::to_string(i), 40, 120, 1.6, 8);
  }
  add("mid_res_attn0", 60, 150, 1.6, 10);
  add("mid_res_attn1", 65, 160, 1.6, 10);
  for (int i = 0; i < 3; ++i) {
    add("up3_res" + std::to_string(i), 45, 140, 2.0, 9);
  }
  add("up3_upsample", 6, 15, 2.6, 5);
  for (int i = 0; i < 3; ++i) {
    add("up2_restrans" + std::to_string(i), 75, 230, 3.0, 16);
  }
  add("up2_upsample", 6, 18, 4.0, 6);
  for (int i = 0; i < 3; ++i) {
    add("up1_restrans" + std::to_string(i), 80, 105, 5.5, 28);
  }
  add("up1_upsample", 6, 8, 6.5, 9);
  for (int i = 0; i < 3; ++i) {
    add("up0_restrans" + std::to_string(i), 88, 42, 7.9, 44);
  }
  add("out_norm_conv", 10, 6, 0.033, 6);
  ensure(c.num_layers() == 30, "SD U-Net layer count drifted");
  scale_total(c.layers, &LayerDesc::fwd_gflop, 1700.0);
  scale_total(c.layers, &LayerDesc::param_mb, 1730.0);
  scale_total(c.layers, &LayerDesc::act_mb, 1290.0);
  return c;
}

// Generic cascaded-diffusion U-Net backbone used by the CDM models.
ComponentDesc make_cdm_unet(const std::string& name, int num_layers,
                            double total_gflop, double total_param_mb,
                            double total_act_mb, double out_mb) {
  ComponentDesc c;
  c.name = name;
  c.trainable = true;
  // Spindle-shaped cost profile: heavier layers in the middle of the net.
  for (int i = 0; i < num_layers; ++i) {
    const double t = static_cast<double>(i) / (num_layers - 1);
    const double bump = 0.6 + 0.8 * std::sin(3.14159265 * t);
    c.layers.push_back(layer(name + "_block" + std::to_string(i),
                             LayerKind::kResBlock, bump, bump, out_mb,
                             bump, 0.30, 0.15, 0.25));
  }
  scale_total(c.layers, &LayerDesc::fwd_gflop, total_gflop);
  scale_total(c.layers, &LayerDesc::param_mb, total_param_mb);
  scale_total(c.layers, &LayerDesc::act_mb, total_act_mb);
  return c;
}

ComponentDesc make_class_embedding(const std::string& name) {
  ComponentDesc c;
  c.name = name;
  c.trainable = false;
  c.layers.push_back(layer(name + "_lookup", LayerKind::kEmbedding, 0.01, 8.0,
                           0.004, 0.01, 0.20, 0.05));
  c.layers.push_back(
      layer(name + "_mlp", LayerKind::kLinear, 0.05, 4.0, 0.004, 0.01, 0.30,
            0.05));
  return c;
}

}  // namespace

ModelDesc make_stable_diffusion_v21() {
  ModelDesc m;
  m.name = "stable_diffusion_v2.1";
  m.image_size = 512;
  m.self_conditioning = true;
  m.self_cond_prob = 0.5;
  m.components.push_back(make_clip_text_encoder());  // 0
  m.components.push_back(make_vae_encoder());        // 1
  ComponentDesc unet = make_sd_unet("sd_unet");      // 2
  unet.deps = {0, 1};
  m.components.push_back(std::move(unet));
  m.backbone_ids = {2};
  validate(m);
  return m;
}

ModelDesc make_controlnet_v10() {
  ModelDesc m;
  m.name = "controlnet_v1.0";
  m.image_size = 512;
  m.self_conditioning = true;
  m.self_cond_prob = 0.5;

  m.components.push_back(make_clip_text_encoder());  // 0
  m.components.push_back(make_vae_encoder());        // 1

  // Canny-hint encoder: conv stack ingesting the 512x512 condition image.
  ComponentDesc hint;
  hint.name = "hint_encoder";
  hint.trainable = false;
  hint.layers.push_back(layer("hint_conv0", LayerKind::kHighResConv, 146.0,
                              0.2, 33.0, 1.0, 0.10, 0.12));
  hint.layers.push_back(layer("hint_conv1", LayerKind::kHighResConv, 40.0, 0.4,
                              16.0, 1.0, 0.12, 0.12));
  hint.layers.push_back(
      layer("hint_conv2", LayerKind::kConv, 18.0, 0.8, 8.0, 0.8, 0.18, 0.12));
  hint.layers.push_back(
      layer("hint_conv3", LayerKind::kConv, 6.0, 1.0, 2.6, 0.5, 0.22, 0.12));
  m.components.push_back(std::move(hint));  // 2

  // Locked SD U-Net *encoder* forward: frozen, consumes text/VAE/hint
  // outputs, produces the skip activations the decoder needs. Its output
  // does not depend on trainable parameters, so it is precomputable —
  // this is the paper's example of non-trainable components with
  // inter-dependencies.
  ComponentDesc locked_enc;
  locked_enc.name = "locked_unet_encoder";
  locked_enc.trainable = false;
  locked_enc.deps = {0, 1, 2};
  {
    const ComponentDesc full = make_sd_unet("locked");
    for (int i = 0; i < 12; ++i) {  // conv_in .. down path
      LayerDesc l = full.layers[i];
      l.overhead_fwd_ms = 0.2;
      l.overhead_bwd_ms = 0.0;
      l.grad_mb = 0.0;
      locked_enc.layers.push_back(std::move(l));
    }
    scale_total(locked_enc.layers, &LayerDesc::fwd_gflop, 700.0);
  }
  m.components.push_back(std::move(locked_enc));  // 3

  // Trainable pipeline: the control branch (a trainable copy of the U-Net
  // encoder + zero-convs, 361M params) followed by the locked decoder,
  // through which gradients flow but whose own gradients are never synced
  // (grad_mb = 0, bwd_flop_factor 1.2: dL/dx only, no dL/dW).
  ComponentDesc trainable;
  trainable.name = "control_branch_and_locked_decoder";
  trainable.trainable = true;
  trainable.deps = {0, 1, 2, 3};
  {
    const ComponentDesc full = make_sd_unet("ctrl");
    std::vector<LayerDesc> control(full.layers.begin(),
                                   full.layers.begin() + 14);
    scale_total(control, &LayerDesc::fwd_gflop, 700.0);
    scale_total(control, &LayerDesc::param_mb, 722.0);
    scale_total(control, &LayerDesc::act_mb, 560.0);
    for (LayerDesc& l : control) {
      l.name = "control_" + l.name;
      trainable.layers.push_back(std::move(l));
    }
    std::vector<LayerDesc> decoder(full.layers.begin() + 14,
                                   full.layers.end());
    scale_total(decoder, &LayerDesc::fwd_gflop, 900.0);
    scale_total(decoder, &LayerDesc::param_mb, 1010.0);
    scale_total(decoder, &LayerDesc::act_mb, 640.0);
    for (LayerDesc& l : decoder) {
      l.name = "locked_dec_" + l.name;
      l.grad_mb = 0.0;
      l.bwd_flop_factor = 1.2;
      trainable.layers.push_back(std::move(l));
    }
  }
  m.components.push_back(std::move(trainable));  // 4
  m.backbone_ids = {4};
  validate(m);
  return m;
}

ModelDesc make_cdm_lsun() {
  ModelDesc m;
  m.name = "cdm_lsun";
  m.image_size = 128;
  m.self_conditioning = false;
  m.components.push_back(make_class_embedding("lsun_cond"));  // 0
  ComponentDesc base =
      make_cdm_unet("lsun_base64", 24, 520.0, 550.0, 200.0, 3.0);
  base.deps = {0};
  m.components.push_back(std::move(base));  // 1
  ComponentDesc sr = make_cdm_unet("lsun_sr128", 26, 680.0, 640.0, 400.0, 8.0);
  sr.deps = {0};
  m.components.push_back(std::move(sr));  // 2
  m.backbone_ids = {1, 2};
  validate(m);
  return m;
}

ModelDesc make_cdm_imagenet() {
  ModelDesc m;
  m.name = "cdm_imagenet";
  m.image_size = 128;
  m.self_conditioning = false;
  m.components.push_back(make_class_embedding("in_cond"));  // 0
  ComponentDesc b1 =
      make_cdm_unet("imagenet_sr64", 28, 880.0, 820.0, 300.0, 4.0);
  b1.deps = {0};
  m.components.push_back(std::move(b1));  // 1
  ComponentDesc b2 =
      make_cdm_unet("imagenet_sr128", 30, 1180.0, 950.0, 600.0, 10.0);
  b2.deps = {0};
  m.components.push_back(std::move(b2));  // 2
  m.backbone_ids = {1, 2};
  validate(m);
  return m;
}

ModelDesc make_sdxl_base() {
  ModelDesc m;
  m.name = "sdxl_base";
  m.image_size = 1024;
  m.self_conditioning = false;

  // Dual text encoders: CLIP-L (smaller) + OpenCLIP-bigG (larger).
  ComponentDesc text1 = make_clip_text_encoder();
  text1.name = "clip_l_text_encoder";
  scale_total(text1.layers, &LayerDesc::fwd_gflop, 20.0);
  m.components.push_back(std::move(text1));  // 0
  ComponentDesc text2 = make_clip_text_encoder();
  text2.name = "openclip_bigg_text_encoder";
  scale_total(text2.layers, &LayerDesc::fwd_gflop, 140.0);
  scale_total(text2.layers, &LayerDesc::param_mb, 1390.0);
  m.components.push_back(std::move(text2));  // 1

  // VAE at 1024x1024: 4x the spatial work of the SD v2.1 encoder.
  ComponentDesc vae = make_vae_encoder();
  vae.name = "vae_encoder_1024";
  scale_total(vae.layers, &LayerDesc::fwd_gflop, 3552.0);  // 888 x 4
  for (LayerDesc& l : vae.layers) {
    l.output_mb *= 4.0;
  }
  m.components.push_back(std::move(vae));  // 2

  // U-Net: ~2.6B params (5200 MB fp16), ~6 TFLOP fwd at 128x128 latents.
  ComponentDesc unet = make_sd_unet("sdxl_unet");
  unet.deps = {0, 1, 2};
  scale_total(unet.layers, &LayerDesc::fwd_gflop, 6000.0);
  scale_total(unet.layers, &LayerDesc::param_mb, 5200.0);
  scale_total(unet.layers, &LayerDesc::act_mb, 2600.0);
  m.components.push_back(std::move(unet));  // 3
  m.backbone_ids = {3};
  validate(m);
  return m;
}

ModelDesc make_dit_xl2() {
  ModelDesc m;
  m.name = "dit_xl2";
  m.image_size = 256;
  m.self_conditioning = false;

  // Conditioning embedder (class label + timestep), frozen here: DiT
  // trains it, but as a pipeline input producer it behaves like the
  // paper's encoders.
  m.components.push_back(make_class_embedding("dit_cond"));  // 0

  // VAE encoder at 256x256: same architecture as SD's but 1/4 the spatial
  // work (ratios scale accordingly).
  ComponentDesc vae = make_vae_encoder();
  vae.name = "vae_encoder_256";
  scale_total(vae.layers, &LayerDesc::fwd_gflop, 222.0);  // 888 / 4
  for (LayerDesc& l : vae.layers) {
    l.output_mb *= 0.25;
  }
  m.components.push_back(std::move(vae));  // 1

  // Backbone: patchify + 28 transformer blocks (width 1152, 256 tokens) +
  // final layer. DiT-XL/2 ~675M params (1350 MB fp16), ~480 GFLOP fwd.
  ComponentDesc backbone;
  backbone.name = "dit_backbone";
  backbone.trainable = true;
  backbone.deps = {0, 1};
  backbone.layers.push_back(layer("patchify", LayerKind::kLinear, 2.0, 3.0,
                                  0.6, 1.2, 0.40, 0.3, 0.5));
  for (int i = 0; i < 28; ++i) {
    backbone.layers.push_back(
        layer("dit_block_" + std::to_string(i), LayerKind::kTransformerBlock,
              17.0, 48.0, 0.6, 4.0, 0.42, 0.3, 0.5));
  }
  backbone.layers.push_back(layer("final_layer", LayerKind::kLinear, 2.0,
                                  4.0, 0.016, 0.8, 0.40, 0.3, 0.5));
  scale_total(backbone.layers, &LayerDesc::fwd_gflop, 480.0);
  scale_total(backbone.layers, &LayerDesc::param_mb, 1350.0);
  m.components.push_back(std::move(backbone));  // 2
  m.backbone_ids = {2};
  validate(m);
  return m;
}

ModelDesc make_cdm_imagenet_full() {
  ModelDesc m = make_cdm_imagenet();
  m.name = "cdm_imagenet_full";
  ComponentDesc base =
      make_cdm_unet("imagenet_base32", 20, 560.0, 700.0, 250.0, 2.0);
  base.deps = {0};
  m.backbone_ids.insert(m.backbone_ids.begin(),
                        static_cast<int>(m.components.size()));
  m.components.push_back(std::move(base));
  validate(m);
  return m;
}

std::vector<ModelDesc> paper_models() {
  return {make_stable_diffusion_v21(), make_controlnet_v10(), make_cdm_lsun(),
          make_cdm_imagenet()};
}

ModelDesc make_synthetic_model(int num_layers, int num_frozen_layers,
                               unsigned seed) {
  require(num_layers >= 1, "need at least one trainable layer");
  require(num_frozen_layers >= 0, "frozen layer count must be >= 0");
  const NoiseSource rng(seed, 0.9);  // wide spread for adversarial shapes
  ModelDesc m;
  m.name = "synthetic_" + std::to_string(seed);
  ComponentDesc frozen;
  frozen.name = "synthetic_encoder";
  frozen.trainable = false;
  for (int i = 0; i < num_frozen_layers; ++i) {
    const double r = rng.multiplier(NoiseSource::key(1, i));
    frozen.layers.push_back(layer("enc" + std::to_string(i),
                                  LayerKind::kConv, 20.0 * r, 5.0 * r,
                                  2.0 * r, 1.0, 0.3, 0.1));
  }
  ComponentDesc backbone;
  backbone.name = "synthetic_backbone";
  backbone.trainable = true;
  if (num_frozen_layers > 0) {
    backbone.deps = {0};
  }
  for (int i = 0; i < num_layers; ++i) {
    const double r = rng.multiplier(NoiseSource::key(2, i));
    const double r2 = rng.multiplier(NoiseSource::key(3, i));
    backbone.layers.push_back(layer("blk" + std::to_string(i),
                                    LayerKind::kResBlock, 50.0 * r, 40.0 * r2,
                                    3.0 * r, 10.0 * r, 0.3, 0.3, 0.5));
  }
  if (num_frozen_layers > 0) {
    m.components.push_back(std::move(frozen));
    m.components.push_back(std::move(backbone));
    m.backbone_ids = {1};
  } else {
    m.components.push_back(std::move(backbone));
    m.backbone_ids = {0};
  }
  validate(m);
  return m;
}

ModelDesc make_uniform_model(int num_layers, double gflop_per_layer,
                             double param_mb_per_layer) {
  require(num_layers >= 1, "need at least one layer");
  ModelDesc m;
  m.name = "uniform";
  ComponentDesc backbone;
  backbone.name = "uniform_backbone";
  backbone.trainable = true;
  for (int i = 0; i < num_layers; ++i) {
    backbone.layers.push_back(layer("blk" + std::to_string(i),
                                    LayerKind::kResBlock, gflop_per_layer,
                                    param_mb_per_layer, 2.0, 5.0, 0.3, 0.0,
                                    0.0));
  }
  m.components.push_back(std::move(backbone));
  m.backbone_ids = {0};
  validate(m);
  return m;
}

}  // namespace dpipe
