#include "model/model.h"

#include <algorithm>
#include <array>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

namespace dpipe {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kHighResConv:
      return "highres_conv";
    case LayerKind::kResBlock:
      return "res_block";
    case LayerKind::kAttention:
      return "attention";
    case LayerKind::kTransformerBlock:
      return "transformer_block";
    case LayerKind::kLinear:
      return "linear";
    case LayerKind::kNorm:
      return "norm";
    case LayerKind::kEmbedding:
      return "embedding";
    case LayerKind::kUpsample:
      return "upsample";
    case LayerKind::kDownsample:
      return "downsample";
    case LayerKind::kOther:
      return "other";
  }
  return "unknown";
}

LayerKind layer_kind_from_string(const std::string& text) {
  static constexpr std::array<LayerKind, 11> kAll = {
      LayerKind::kConv,      LayerKind::kHighResConv,
      LayerKind::kResBlock,  LayerKind::kAttention,
      LayerKind::kTransformerBlock,
      LayerKind::kLinear,    LayerKind::kNorm,
      LayerKind::kEmbedding, LayerKind::kUpsample,
      LayerKind::kDownsample, LayerKind::kOther};
  for (const LayerKind kind : kAll) {
    if (text == to_string(kind)) {
      return kind;
    }
  }
  throw std::invalid_argument("unknown layer kind: " + text);
}

double ComponentDesc::total_param_mb() const {
  return std::accumulate(
      layers.begin(), layers.end(), 0.0,
      [](double acc, const LayerDesc& l) { return acc + l.param_mb; });
}

double ComponentDesc::total_fwd_gflop() const {
  return std::accumulate(
      layers.begin(), layers.end(), 0.0,
      [](double acc, const LayerDesc& l) { return acc + l.fwd_gflop; });
}

const ComponentDesc& ModelDesc::backbone(int cascade_index) const {
  require(cascade_index >= 0 &&
              cascade_index < static_cast<int>(backbone_ids.size()),
          "cascade index out of range");
  return components[backbone_ids[cascade_index]];
}

std::vector<int> ModelDesc::non_trainable_topo_order() const {
  // Kahn's algorithm restricted to non-trainable components. Dependencies on
  // trainable components are ignored here: by cross-iteration pipelining the
  // non-trainable part of iteration i+1 only needs iteration i+1's *inputs*.
  const int n = static_cast<int>(components.size());
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> children(n);
  for (int i = 0; i < n; ++i) {
    if (components[i].trainable) {
      continue;
    }
    for (const int dep : components[i].deps) {
      if (!components[dep].trainable) {
        ++indegree[i];
        children[dep].push_back(i);
      }
    }
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (!components[i].trainable && indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  std::vector<int> order;
  while (!ready.empty()) {
    // Pop the smallest index for determinism.
    const auto it = std::min_element(ready.begin(), ready.end());
    const int node = *it;
    ready.erase(it);
    order.push_back(node);
    for (const int child : children[node]) {
      if (--indegree[child] == 0) {
        ready.push_back(child);
      }
    }
  }
  int non_trainable_count = 0;
  for (const ComponentDesc& c : components) {
    if (!c.trainable) {
      ++non_trainable_count;
    }
  }
  ensure(static_cast<int>(order.size()) == non_trainable_count,
         "non-trainable component dependencies contain a cycle");
  return order;
}

double ModelDesc::trainable_param_mb() const {
  double sum = 0.0;
  for (const ComponentDesc& c : components) {
    if (c.trainable) {
      sum += c.total_param_mb();
    }
  }
  return sum;
}

void validate(const ModelDesc& model) {
  require(!model.components.empty(), "model has no components");
  require(!model.backbone_ids.empty(), "model has no backbone");
  const int n = static_cast<int>(model.components.size());
  for (const int id : model.backbone_ids) {
    require(id >= 0 && id < n, "backbone id out of range");
    require(model.components[id].trainable, "backbone must be trainable");
    require(!model.components[id].layers.empty(), "backbone has no layers");
  }
  for (const ComponentDesc& c : model.components) {
    for (const int dep : c.deps) {
      require(dep >= 0 && dep < n, "component dependency out of range");
    }
    for (const LayerDesc& l : c.layers) {
      require(l.fwd_gflop >= 0.0 && l.param_mb >= 0.0 && l.output_mb >= 0.0 &&
                  l.act_mb >= 0.0,
              "layer sizes must be non-negative");
      require(l.bwd_flop_factor >= 0.0, "bwd_flop_factor must be >= 0");
    }
  }
  require(model.self_cond_prob >= 0.0 && model.self_cond_prob <= 1.0,
          "self_cond_prob must be a probability");
  // Throws if the non-trainable dependency graph is cyclic.
  (void)model.non_trainable_topo_order();
}

namespace {

/// Reads the remainder of the current line after a `key=` token that holds
/// a free-form name (names are written last on their line for this reason).
std::string read_name_field(std::istream& in, const std::string& key) {
  std::string token;
  require(static_cast<bool>(in >> token) && token.size() >= key.size() &&
              token.compare(0, key.size(), key) == 0,
          "expected " + key + " field");
  std::string rest;
  std::getline(in, rest);
  return token.substr(key.size()) + rest;
}

double read_field(std::istream& in, const std::string& key) {
  std::string token;
  require(static_cast<bool>(in >> token) && token.size() > key.size() &&
              token.compare(0, key.size(), key) == 0,
          "expected " + key + " field");
  return std::stod(token.substr(key.size()));
}

void expect_keyword(std::istream& in, const std::string& keyword) {
  std::string token;
  require(static_cast<bool>(in >> token) && token == keyword,
          "expected keyword " + keyword);
}

}  // namespace

void write_canonical(std::ostream& out, const ModelDesc& model) {
  const auto flags = out.flags();
  const auto precision = out.precision(17);
  out << "dpipe-model v1\n";
  out << "name=" << model.name << '\n';
  out << "self_conditioning " << (model.self_conditioning ? 1 : 0) << ' '
      << model.self_cond_prob << '\n';
  out << "image_size " << model.image_size << '\n';
  out << "components " << model.components.size() << '\n';
  for (const ComponentDesc& c : model.components) {
    out << "component trainable=" << (c.trainable ? 1 : 0)
        << " deps=" << c.deps.size();
    for (const int dep : c.deps) {
      out << ' ' << dep;
    }
    out << " layers=" << c.layers.size() << " name=" << c.name << '\n';
    for (const LayerDesc& l : c.layers) {
      out << "layer kind=" << to_string(l.kind) << " fwd=" << l.fwd_gflop
          << " bwdf=" << l.bwd_flop_factor << " param=" << l.param_mb
          << " grad=" << l.grad_mb << " out=" << l.output_mb
          << " act=" << l.act_mb << " ovf=" << l.overhead_fwd_ms
          << " ovb=" << l.overhead_bwd_ms << " eff=" << l.efficiency
          << " name=" << l.name << '\n';
    }
  }
  out << "backbones " << model.backbone_ids.size();
  for (const int id : model.backbone_ids) {
    out << ' ' << id;
  }
  out << '\n';
  out.precision(precision);
  out.flags(flags);
}

ModelDesc read_canonical_model(std::istream& in) {
  std::string line;
  // Tolerate a leading blank from a previous line-oriented reader.
  while (std::getline(in, line) && line.empty()) {
  }
  require(line == "dpipe-model v1", "not a dpipe-model v1 block");
  ModelDesc model;
  model.name = read_name_field(in, "name=");
  // The name line's getline consumed its newline; subsequent reads are
  // token-based until the next name field.
  expect_keyword(in, "self_conditioning");
  int self_cond = 0;
  require(static_cast<bool>(in >> self_cond >> model.self_cond_prob),
          "malformed self_conditioning line");
  model.self_conditioning = self_cond != 0;
  expect_keyword(in, "image_size");
  require(static_cast<bool>(in >> model.image_size), "malformed image_size");
  expect_keyword(in, "components");
  std::size_t num_components = 0;
  require(static_cast<bool>(in >> num_components), "malformed components");
  model.components.reserve(num_components);
  for (std::size_t ci = 0; ci < num_components; ++ci) {
    expect_keyword(in, "component");
    ComponentDesc c;
    c.trainable = read_field(in, "trainable=") != 0.0;
    const auto num_deps = static_cast<std::size_t>(read_field(in, "deps="));
    c.deps.resize(num_deps);
    for (std::size_t d = 0; d < num_deps; ++d) {
      require(static_cast<bool>(in >> c.deps[d]), "truncated deps list");
    }
    const auto num_layers =
        static_cast<std::size_t>(read_field(in, "layers="));
    c.name = read_name_field(in, "name=");
    c.layers.reserve(num_layers);
    for (std::size_t li = 0; li < num_layers; ++li) {
      expect_keyword(in, "layer");
      LayerDesc l;
      std::string kind;
      require(static_cast<bool>(in >> kind) && kind.size() > 5 &&
                  kind.compare(0, 5, "kind=") == 0,
              "expected kind= field");
      l.kind = layer_kind_from_string(kind.substr(5));
      l.fwd_gflop = read_field(in, "fwd=");
      l.bwd_flop_factor = read_field(in, "bwdf=");
      l.param_mb = read_field(in, "param=");
      l.grad_mb = read_field(in, "grad=");
      l.output_mb = read_field(in, "out=");
      l.act_mb = read_field(in, "act=");
      l.overhead_fwd_ms = read_field(in, "ovf=");
      l.overhead_bwd_ms = read_field(in, "ovb=");
      l.efficiency = read_field(in, "eff=");
      l.name = read_name_field(in, "name=");
      c.layers.push_back(std::move(l));
    }
    model.components.push_back(std::move(c));
  }
  expect_keyword(in, "backbones");
  std::size_t num_backbones = 0;
  require(static_cast<bool>(in >> num_backbones), "malformed backbones");
  model.backbone_ids.resize(num_backbones);
  for (std::size_t b = 0; b < num_backbones; ++b) {
    require(static_cast<bool>(in >> model.backbone_ids[b]),
            "truncated backbone list");
  }
  std::getline(in, line);  // Consume the trailing newline.
  return model;
}

}  // namespace dpipe
