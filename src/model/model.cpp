#include "model/model.h"

#include <algorithm>
#include <numeric>

namespace dpipe {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kHighResConv:
      return "highres_conv";
    case LayerKind::kResBlock:
      return "res_block";
    case LayerKind::kAttention:
      return "attention";
    case LayerKind::kTransformerBlock:
      return "transformer_block";
    case LayerKind::kLinear:
      return "linear";
    case LayerKind::kNorm:
      return "norm";
    case LayerKind::kEmbedding:
      return "embedding";
    case LayerKind::kUpsample:
      return "upsample";
    case LayerKind::kDownsample:
      return "downsample";
    case LayerKind::kOther:
      return "other";
  }
  return "unknown";
}

double ComponentDesc::total_param_mb() const {
  return std::accumulate(
      layers.begin(), layers.end(), 0.0,
      [](double acc, const LayerDesc& l) { return acc + l.param_mb; });
}

double ComponentDesc::total_fwd_gflop() const {
  return std::accumulate(
      layers.begin(), layers.end(), 0.0,
      [](double acc, const LayerDesc& l) { return acc + l.fwd_gflop; });
}

const ComponentDesc& ModelDesc::backbone(int cascade_index) const {
  require(cascade_index >= 0 &&
              cascade_index < static_cast<int>(backbone_ids.size()),
          "cascade index out of range");
  return components[backbone_ids[cascade_index]];
}

std::vector<int> ModelDesc::non_trainable_topo_order() const {
  // Kahn's algorithm restricted to non-trainable components. Dependencies on
  // trainable components are ignored here: by cross-iteration pipelining the
  // non-trainable part of iteration i+1 only needs iteration i+1's *inputs*.
  const int n = static_cast<int>(components.size());
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> children(n);
  for (int i = 0; i < n; ++i) {
    if (components[i].trainable) {
      continue;
    }
    for (const int dep : components[i].deps) {
      if (!components[dep].trainable) {
        ++indegree[i];
        children[dep].push_back(i);
      }
    }
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (!components[i].trainable && indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  std::vector<int> order;
  while (!ready.empty()) {
    // Pop the smallest index for determinism.
    const auto it = std::min_element(ready.begin(), ready.end());
    const int node = *it;
    ready.erase(it);
    order.push_back(node);
    for (const int child : children[node]) {
      if (--indegree[child] == 0) {
        ready.push_back(child);
      }
    }
  }
  int non_trainable_count = 0;
  for (const ComponentDesc& c : components) {
    if (!c.trainable) {
      ++non_trainable_count;
    }
  }
  ensure(static_cast<int>(order.size()) == non_trainable_count,
         "non-trainable component dependencies contain a cycle");
  return order;
}

double ModelDesc::trainable_param_mb() const {
  double sum = 0.0;
  for (const ComponentDesc& c : components) {
    if (c.trainable) {
      sum += c.total_param_mb();
    }
  }
  return sum;
}

void validate(const ModelDesc& model) {
  require(!model.components.empty(), "model has no components");
  require(!model.backbone_ids.empty(), "model has no backbone");
  const int n = static_cast<int>(model.components.size());
  for (const int id : model.backbone_ids) {
    require(id >= 0 && id < n, "backbone id out of range");
    require(model.components[id].trainable, "backbone must be trainable");
    require(!model.components[id].layers.empty(), "backbone has no layers");
  }
  for (const ComponentDesc& c : model.components) {
    for (const int dep : c.deps) {
      require(dep >= 0 && dep < n, "component dependency out of range");
    }
    for (const LayerDesc& l : c.layers) {
      require(l.fwd_gflop >= 0.0 && l.param_mb >= 0.0 && l.output_mb >= 0.0 &&
                  l.act_mb >= 0.0,
              "layer sizes must be non-negative");
      require(l.bwd_flop_factor >= 0.0, "bwd_flop_factor must be >= 0");
    }
  }
  require(model.self_cond_prob >= 0.0 && model.self_cond_prob <= 1.0,
          "self_cond_prob must be a probability");
  // Throws if the non-trainable dependency graph is cyclic.
  (void)model.non_trainable_topo_order();
}

}  // namespace dpipe
