#pragma once

#include "model/model.h"

namespace dpipe {

/// Model zoo: layer-graph descriptors of the four diffusion models evaluated
/// in the paper (Table 5), calibrated against the paper's published
/// measurements — Table 1 non-trainable/trainable ratios, Fig. 5 layer-time
/// distribution (short text-encoder layers, moderate VAE layers, a few
/// extra-long >400 ms layers), Table 2 synchronization fractions.
///
/// All descriptors are *structural*: layer FLOPs, parameter/activation/
/// communication sizes. Times are derived by profiler::AnalyticCostModel.

/// Stable Diffusion v2.1: U-Net backbone (~865M params), OpenCLIP-H text
/// encoder, VAE encoder. 512x512 input; self-conditioning enabled (§6).
[[nodiscard]] ModelDesc make_stable_diffusion_v21();

/// ControlNet v1.0: trainable control branch + locked U-Net decoder
/// (pipelined together; locked layers sync no gradients), with frozen text
/// encoder, VAE, canny-hint encoder and locked U-Net encoder as the
/// non-trainable part (with inter-dependencies, §5).
[[nodiscard]] ModelDesc make_controlnet_v10();

/// Cascaded diffusion (LSUN): two backbones (64x64 base, 128x128 SR) trained
/// with bidirectional pipelining; almost no non-trainable part.
[[nodiscard]] ModelDesc make_cdm_lsun();

/// Cascaded diffusion (ImageNet): the second and third backbones
/// (64x64 and 128x128 inputs), as trained in §6.
[[nodiscard]] ModelDesc make_cdm_imagenet();

/// The full ImageNet cascade including the base backbone the paper left
/// out for memory reasons. Three backbones exercise the §4.2 grouping
/// extension (two FLOP-balanced virtual backbones).
[[nodiscard]] ModelDesc make_cdm_imagenet_full();

/// Returns all four paper models (for sweeps in benches).
[[nodiscard]] std::vector<ModelDesc> paper_models();

/// SDXL-base-style latent diffusion model (~2.6B-parameter U-Net at
/// 128x128x4 latents, dual text encoders): the "larger backbone" trend the
/// paper's introduction motivates. Exercises memory-pressure paths — DDP
/// cannot fit meaningful local batches where the pipeline still can.
[[nodiscard]] ModelDesc make_sdxl_base();

/// DiT-XL/2-style latent diffusion transformer (~675M params, 28 blocks on
/// 32x32x4 latents at 256x256): the transformer-backbone direction the
/// paper's conclusion names as a natural extension. Frozen parts: a class/
/// text embedder and the VAE encoder at 256x256.
[[nodiscard]] ModelDesc make_dit_xl2();

/// Synthetic single-backbone model for tests: `num_layers` trainable layers
/// with deterministic pseudo-random sizes (seeded), one small frozen encoder
/// of `num_frozen_layers` layers.
[[nodiscard]] ModelDesc make_synthetic_model(int num_layers,
                                             int num_frozen_layers,
                                             unsigned seed);

/// Synthetic uniform backbone: every layer identical. Useful for analytic
/// expectations in unit tests (optimal partition is the even split).
[[nodiscard]] ModelDesc make_uniform_model(int num_layers,
                                           double gflop_per_layer,
                                           double param_mb_per_layer);

}  // namespace dpipe
