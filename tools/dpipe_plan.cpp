// dpipe_plan: DiffusionPipe's front-end as a CLI. Plans pipeline training
// for a zoo model and writes the back-end instruction program.
//
//   dpipe_plan <model> <machines> <global_batch> [output.dpipe]
//             [--schedule <family>] [--vstages <N>] [--connect <socket>]
//
// Models: sd21, controlnet, cdm_lsun, cdm_imagenet, cdm_imagenet_full,
//         sdxl, dit.
//
// --schedule picks the plannable family: 1f1b (default), interleaved
// (virtual stages; pair with --vstages), or bidir (requires a two-backbone
// cdm_* model). --vstages N widens the search grid with a V axis over
// 1..N virtual stages per device.
//
// With --connect the request goes to a running dpipe_plan_serve instead of
// planning locally: repeats are answered from the server's whole-plan cache.
// `dpipe_plan --connect <socket> --shutdown` stops the server.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/instr/serialize.h"
#include "core/planner/planner.h"
#include "model/zoo.h"
#include "service/protocol.h"
#include "service/request.h"

namespace {

dpipe::ModelDesc model_by_name(const std::string& name) {
  using namespace dpipe;
  if (name == "sd21") return make_stable_diffusion_v21();
  if (name == "controlnet") return make_controlnet_v10();
  if (name == "cdm_lsun") return make_cdm_lsun();
  if (name == "cdm_imagenet") return make_cdm_imagenet();
  if (name == "cdm_imagenet_full") return make_cdm_imagenet_full();
  if (name == "sdxl") return make_sdxl_base();
  if (name == "dit") return make_dit_xl2();
  throw std::invalid_argument("unknown model: " + name);
}

int connect_to(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("cannot create socket");
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to " + socket_path);
  }
  return fd;
}

void print_config(const dpipe::PlanConfig& config) {
  std::printf("  S=%d M=%d D=%d dp=%d V=%d\n", config.num_stages,
              config.num_microbatches, config.group_size,
              config.data_parallel_degree, config.vstages);
  std::printf("  predicted iteration %.1f ms, planned bubble %.1f%%\n",
              config.predicted_iteration_ms,
              100.0 * config.planned_bubble_ratio);
}

int write_program_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << text;
  std::printf("  wrote instruction program to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_path;
  std::string schedule;
  int vstages = 1;
  bool shutdown = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--schedule" && i + 1 < argc) {
      schedule = argv[++i];
    } else if (arg == "--vstages" && i + 1 < argc) {
      vstages = std::atoi(argv[++i]);
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (shutdown && !connect_path.empty()) {
    try {
      const int fd = connect_to(connect_path);
      dpipe::write_frame(fd, "shutdown\n");
      (void)dpipe::read_frame(fd);
      ::close(fd);
      std::printf("server at %s shut down\n", connect_path.c_str());
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }
  if (positional.size() < 3) {
    std::fprintf(stderr,
                 "usage: %s <model> <machines> <global_batch> "
                 "[output.dpipe] [--schedule <family>] [--vstages <N>] "
                 "[--connect <socket>]\n"
                 "       %s --connect <socket> --shutdown\n"
                 "models: sd21 controlnet cdm_lsun cdm_imagenet "
                 "cdm_imagenet_full sdxl dit\n"
                 "schedules: 1f1b interleaved bidir\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    const dpipe::ModelDesc model = model_by_name(positional[0]);
    const int machines = std::atoi(positional[1].c_str());
    const double batch = std::atof(positional[2].c_str());
    dpipe::PlannerOptions options;
    options.global_batch = batch;
    if (!schedule.empty()) {
      const dpipe::ScheduleFamily family =
          dpipe::parse_schedule_family(schedule);
      if (family == dpipe::ScheduleFamily::kGpipe) {
        std::fprintf(stderr,
                     "error: gpipe is a baseline, not a plannable family; "
                     "lower one directly with dpipe_run --schedule=gpipe\n");
        return 2;
      }
      if (family == dpipe::ScheduleFamily::kBidirectional) {
        // The planner picks the bidirectional builder whenever the model
        // has two backbone components; the flag just validates the intent.
        if (model.backbone_ids.size() < 2) {
          std::fprintf(stderr,
                       "error: bidir needs a two-backbone model "
                       "(cdm_lsun, cdm_imagenet, ...)\n");
          return 2;
        }
      } else {
        options.schedule_family = family;
      }
    }
    if (vstages < 1) {
      std::fprintf(stderr, "error: --vstages must be positive\n");
      return 2;
    }
    if (vstages > 1) {
      if (options.schedule_family != dpipe::ScheduleFamily::kInterleaved) {
        std::fprintf(stderr,
                     "error: --vstages > 1 requires "
                     "--schedule interleaved\n");
        return 2;
      }
      options.vstage_candidates.clear();
      for (int v = 1; v <= vstages; ++v) {
        options.vstage_candidates.push_back(v);
      }
    }

    if (!connect_path.empty()) {
      dpipe::PlanRequest request;
      request.model = model;
      request.cluster = dpipe::make_p4de_cluster(machines);
      request.options = options;
      const int fd = connect_to(connect_path);
      dpipe::write_frame(fd, dpipe::encode_plan_request(request));
      const auto payload = dpipe::read_frame(fd);
      ::close(fd);
      if (!payload.has_value()) {
        std::fprintf(stderr, "error: server closed the connection\n");
        return 1;
      }
      const dpipe::PlanResponse response =
          dpipe::decode_plan_response(*payload);
      if (!response.ok) {
        std::fprintf(stderr, "server error: %s\n", response.error.c_str());
        return 1;
      }
      std::printf("%s on %d GPUs, batch %.0f (%s):\n", model.name.c_str(),
                  8 * machines, batch,
                  response.cache_hit ? "served from plan cache"
                                     : "planned by server");
      print_config(response.plan->config);
      if (positional.size() >= 4) {
        return write_program_text(positional[3],
                                  response.plan->program_text);
      }
      return 0;
    }

    const dpipe::Planner planner(model, dpipe::make_p4de_cluster(machines),
                                 options);
    const dpipe::Plan plan = planner.plan();
    std::printf("%s on %d GPUs, batch %.0f:\n", model.name.c_str(),
                8 * machines, batch);
    print_config(plan.config);
    if (positional.size() >= 4) {
      return write_program_text(positional[3],
                                dpipe::program_to_string(plan.program));
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
