// dpipe_plan: DiffusionPipe's front-end as a CLI. Plans pipeline training
// for a zoo model and writes the back-end instruction program.
//
//   dpipe_plan <model> <machines> <global_batch> [output.dpipe]
//
// Models: sd21, controlnet, cdm_lsun, cdm_imagenet, cdm_imagenet_full,
//         sdxl, dit.

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/instr/serialize.h"
#include "core/planner/planner.h"
#include "model/zoo.h"

namespace {

dpipe::ModelDesc model_by_name(const std::string& name) {
  using namespace dpipe;
  if (name == "sd21") return make_stable_diffusion_v21();
  if (name == "controlnet") return make_controlnet_v10();
  if (name == "cdm_lsun") return make_cdm_lsun();
  if (name == "cdm_imagenet") return make_cdm_imagenet();
  if (name == "cdm_imagenet_full") return make_cdm_imagenet_full();
  if (name == "sdxl") return make_sdxl_base();
  if (name == "dit") return make_dit_xl2();
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <model> <machines> <global_batch> "
                 "[output.dpipe]\n"
                 "models: sd21 controlnet cdm_lsun cdm_imagenet "
                 "cdm_imagenet_full sdxl dit\n",
                 argv[0]);
    return 2;
  }
  try {
    const dpipe::ModelDesc model = model_by_name(argv[1]);
    const int machines = std::atoi(argv[2]);
    const double batch = std::atof(argv[3]);
    dpipe::PlannerOptions options;
    options.global_batch = batch;
    const dpipe::Planner planner(model, dpipe::make_p4de_cluster(machines),
                                 options);
    const dpipe::Plan plan = planner.plan();
    std::printf("%s on %d GPUs, batch %.0f:\n", model.name.c_str(),
                8 * machines, batch);
    std::printf("  S=%d M=%d D=%d dp=%d\n", plan.config.num_stages,
                plan.config.num_microbatches, plan.config.group_size,
                plan.config.data_parallel_degree);
    std::printf("  predicted iteration %.1f ms, planned bubble %.1f%%\n",
                plan.config.predicted_iteration_ms,
                100.0 * plan.config.planned_bubble_ratio);
    if (argc >= 5) {
      std::ofstream out(argv[4]);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", argv[4]);
        return 1;
      }
      dpipe::save_program(plan.program, out);
      std::printf("  wrote instruction program to %s\n", argv[4]);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
