// dpipe_plan_serve: the planning service as a daemon. Clients (dpipe_plan
// --connect, or anything speaking the framed protocol) submit plan requests
// and get back the full verified plan entry; repeats are answered from the
// fingerprint-keyed whole-plan cache, and with --store the cache survives
// restarts.
//
//   dpipe_plan_serve --socket <path> [options]   Unix socket server
//   dpipe_plan_serve --stdio [options]           one framed session on
//                                                stdin/stdout
// options:
//   --store <dir>        persist plans; warm-start from the directory
//   --threads <n>        planner search threads per cold request (0 = auto)
//   --max-requests <n>   exit after answering n requests (0 = serve forever)

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/service.h"

namespace {

struct ServerArgs {
  std::string socket_path;
  bool stdio = false;
  dpipe::PlanServiceOptions service;
  std::size_t max_requests = 0;
};

bool parse_args(int argc, char** argv, ServerArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* value = next();
      if (value == nullptr) return false;
      args->socket_path = value;
    } else if (arg == "--stdio") {
      args->stdio = true;
    } else if (arg == "--store") {
      const char* value = next();
      if (value == nullptr) return false;
      args->service.store_dir = value;
    } else if (arg == "--threads") {
      const char* value = next();
      if (value == nullptr) return false;
      args->service.planner_threads = std::atoi(value);
    } else if (arg == "--max-requests") {
      const char* value = next();
      if (value == nullptr) return false;
      args->max_requests = static_cast<std::size_t>(std::atoll(value));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  // Exactly one transport: --stdio or --socket.
  return args->stdio == args->socket_path.empty();
}

void print_summary(const dpipe::PlanService& service, std::size_t answered) {
  const dpipe::PlanService::Stats stats = service.stats();
  std::printf(
      "served %zu requests: %zu cache hits (%zu single-flight joins), "
      "%zu planner runs, %zu warm-loaded from store\n",
      answered, stats.cache.hits, stats.cache.single_flight_joins,
      stats.planner_runs, stats.store_loaded);
}

int serve_stdio(const ServerArgs& args) {
  dpipe::PlanService service(args.service);
  const dpipe::ServeResult result = dpipe::serve_connection(
      service, STDIN_FILENO, STDOUT_FILENO, args.max_requests);
  print_summary(service, result.requests_answered);
  return 0;
}

int serve_socket(const ServerArgs& args) {
  sockaddr_un addr{};
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n",
                 args.socket_path.c_str());
    return 1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(args.socket_path.c_str());  // Stale socket from a prior run.
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }

  dpipe::PlanService service(args.service);
  std::printf("dpipe_plan_serve: listening on %s\n",
              args.socket_path.c_str());
  std::fflush(stdout);

  std::atomic<std::size_t> answered{0};
  std::atomic<bool> shutdown{false};
  std::vector<std::thread> connections;
  while (!shutdown.load()) {
    if (args.max_requests != 0 && answered.load() >= args.max_requests) {
      break;
    }
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (!shutdown.load() &&
          (args.max_requests == 0 || answered.load() < args.max_requests)) {
        std::perror("accept");
      }
      break;
    }
    // One thread per connection: PlanService is thread-safe, and identical
    // concurrent cold requests still collapse to one planner run.
    connections.emplace_back([&, client] {
      try {
        const dpipe::ServeResult result =
            dpipe::serve_connection(service, client, client,
                                    args.max_requests);
        answered.fetch_add(result.requests_answered);
        if (result.shutdown_requested) {
          shutdown.store(true);
        }
      } catch (const std::exception& error) {
        std::fprintf(stderr, "connection error: %s\n", error.what());
      }
      ::close(client);
      if (shutdown.load() ||
          (args.max_requests != 0 && answered.load() >= args.max_requests)) {
        // Unblock the accept() so the main loop can exit.
        ::shutdown(listener, SHUT_RDWR);
      }
    });
  }
  for (std::thread& connection : connections) {
    connection.join();
  }
  ::close(listener);
  ::unlink(args.socket_path.c_str());
  print_summary(service, answered.load());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServerArgs args;
  if (!parse_args(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s (--socket <path> | --stdio) [--store <dir>] "
                 "[--threads <n>] [--max-requests <n>]\n",
                 argv[0]);
    return 2;
  }
  try {
    return args.stdio ? serve_stdio(args) : serve_socket(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
