// dpipe_run: DiffusionPipe's back-ends as a CLI. Loads an instruction
// program written by dpipe_plan and replays it on one of two backends that
// interpret the same validated program:
//
//   --backend=sim   discrete-event engine (modeled time, default)
//   --backend=real  functional runtime (real tensors, one thread per
//                   device walking its instruction stream)
//
// With --backend=real the tool also replays the program on the engine and
// cross-checks the per-device op order of both backends against the
// program's occupancy trace — the "one program, two backends" parity check.
//
//   dpipe_run [--backend=sim|real] <program.dpipe> <model> <machines>
//             <group_batch> [data_parallel_degree] [iterations]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/instr/serialize.h"
#include "core/instr/validate.h"
#include "engine/engine.h"
#include "model/zoo.h"
#include "profiler/profiler.h"
#include "runtime/pipeline_exec.h"

namespace {

dpipe::ModelDesc model_by_name(const std::string& name) {
  using namespace dpipe;
  if (name == "sd21") return make_stable_diffusion_v21();
  if (name == "controlnet") return make_controlnet_v10();
  if (name == "cdm_lsun") return make_cdm_lsun();
  if (name == "cdm_imagenet") return make_cdm_imagenet();
  if (name == "cdm_imagenet_full") return make_cdm_imagenet_full();
  if (name == "sdxl") return make_sdxl_base();
  if (name == "dit") return make_dit_xl2();
  throw std::invalid_argument("unknown model: " + name);
}

/// op_signature of a measured engine timeline op (occupying ops only).
std::string timeline_signature(const dpipe::PipelineOp& op) {
  dpipe::Instruction instr;
  switch (op.kind) {
    case dpipe::OpKind::kLoad:
      instr.kind = dpipe::InstrKind::kLoadMicroBatch;
      break;
    case dpipe::OpKind::kForward:
      instr.kind = dpipe::InstrKind::kForward;
      break;
    case dpipe::OpKind::kBackward:
      instr.kind = dpipe::InstrKind::kBackward;
      break;
    case dpipe::OpKind::kFrozenForward:
    case dpipe::OpKind::kFrozenForwardPartial:
    case dpipe::OpKind::kLeftoverForward:
      instr.kind = dpipe::InstrKind::kFrozenForward;
      break;
    case dpipe::OpKind::kOptimizer:
      instr.kind = dpipe::InstrKind::kOptimizerStep;
      break;
    case dpipe::OpKind::kGradSync:
      return {};  // Link op: occupies no device.
  }
  instr.backbone = op.backbone;
  instr.stage = op.stage;
  instr.micro = op.micro;
  instr.component = op.component;
  instr.layer_begin = op.layer;
  instr.layer_end = op.layer + 1;
  return op_signature(instr);
}

/// Measured timelines keep only a frozen op's first layer, so drop the
/// ":end" half of frozen signatures before comparing against them.
std::vector<std::vector<std::string>> drop_layer_end(
    std::vector<std::vector<std::string>> log) {
  for (std::vector<std::string>& stream : log) {
    for (std::string& sig : stream) {
      if (sig.rfind("frozen ", 0) == 0) {
        sig.resize(sig.find(':'));
      }
    }
  }
  return log;
}

/// Per-device op-order parity between two execution records.
bool check_parity(const std::vector<std::vector<std::string>>& expected,
                  const std::vector<std::vector<std::string>>& actual,
                  const char* what) {
  if (expected.size() != actual.size()) {
    std::fprintf(stderr, "parity FAILED (%s): device count %zu vs %zu\n",
                 what, expected.size(), actual.size());
    return false;
  }
  for (std::size_t dev = 0; dev < expected.size(); ++dev) {
    if (expected[dev] == actual[dev]) {
      continue;
    }
    std::fprintf(stderr, "parity FAILED (%s) on device %zu:\n", what, dev);
    const std::size_t n = std::max(expected[dev].size(), actual[dev].size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& e =
          i < expected[dev].size() ? expected[dev][i] : "<none>";
      const std::string& a = i < actual[dev].size() ? actual[dev][i] : "<none>";
      if (e != a) {
        std::fprintf(stderr, "  op %zu: expected '%s', got '%s'\n", i,
                     e.c_str(), a.c_str());
        break;
      }
    }
    return false;
  }
  return true;
}

int run_sim(const dpipe::InstructionProgram& program,
            const dpipe::ProfileDb& db, const dpipe::CommModel& comm,
            const char* path, double group_batch, int dp, int iterations) {
  dpipe::EngineOptions options;
  options.group_batch = group_batch;
  options.data_parallel_degree = dp;
  options.iterations = iterations;
  const dpipe::ExecutionEngine engine(db, comm);
  const dpipe::EngineResult result = engine.run(program, options);
  std::printf("replayed %d iterations of %s (backend=sim):\n",
              options.iterations, path);
  std::printf("  steady iteration %.1f ms (first %.1f ms incl. "
              "preamble)\n",
              result.steady_iteration_ms,
              result.iterations[0].duration_ms());
  std::printf("  throughput %.1f samples/s, bubble ratio %.1f%%\n",
              result.samples_per_second, 100.0 * result.steady_bubble_ratio);
  return 0;
}

int run_real(const dpipe::InstructionProgram& program,
             const dpipe::ProfileDb& db, const dpipe::CommModel& comm,
             const char* path, int dp, int iterations) {
  using namespace dpipe;
  using namespace dpipe::rt;

  // Geometry from the program itself: micro-batch rows from the stage-0
  // load instructions, stage count from the binding.
  int num_stages = 0;
  int num_micros = 0;
  int per_micro = 0;
  for (const std::vector<Instruction>& stream : program.per_device) {
    for (const Instruction& instr : stream) {
      if (instr.kind == InstrKind::kLoadMicroBatch) {
        per_micro = std::max(
            per_micro, static_cast<int>(std::llround(instr.samples)));
        num_micros = std::max(num_micros, instr.micro + 1);
      } else if (instr.kind == InstrKind::kForward) {
        num_stages = std::max(num_stages, instr.stage + 1);
      }
    }
  }
  if (per_micro < 1 || num_micros < 1 || num_stages < 1) {
    std::fprintf(stderr, "error: program has no runnable backbone work\n");
    return 1;
  }

  DdpmConfig ddpm;
  // Enough MLP blocks that every pipeline stage gets at least one module.
  ddpm.depth = std::max(4, num_stages);
  const DdpmProblem problem(ddpm);

  PipelineRtConfig cfg;
  cfg.data_parallel_degree = dp;
  cfg.global_batch = per_micro * num_micros * dp;
  cfg.cross_iteration = true;
  cfg.record_execution = true;
  PipelineTrainer trainer(problem, cfg, program);
  trainer.train(iterations);

  std::printf("replayed %d iterations of %s (backend=real):\n", iterations,
              path);
  std::printf("  %d stages x %d micro-batches x %d replicas, "
              "global batch %d\n",
              num_stages, num_micros, dp, cfg.global_batch);
  std::printf("  losses:");
  for (double loss : trainer.losses()) {
    std::printf(" %.6f", loss);
  }
  std::printf("\n");

  // Cross-backend parity: the runtime's executed op order, the simulated
  // engine's measured timelines, and the program's static occupancy trace
  // must agree per device.
  const std::vector<std::vector<std::string>> expected =
      occupancy_trace(trainer.program(), iterations);
  bool ok = check_parity(expected, trainer.execution_log(), "runtime");

  EngineOptions sim;
  sim.group_batch = static_cast<double>(per_micro) * num_micros;
  sim.data_parallel_degree = dp;
  sim.iterations = iterations;
  sim.record_timelines = true;
  const ExecutionEngine engine(db, comm);
  const EngineResult result = engine.run(trainer.program(), sim);
  std::vector<std::vector<std::string>> engine_log(
      result.timelines.devices.size());
  for (std::size_t dev = 0; dev < result.timelines.devices.size(); ++dev) {
    for (const PipelineOp& op : result.timelines.devices[dev].ops) {
      std::string sig = timeline_signature(op);
      if (!sig.empty()) {
        engine_log[dev].push_back(std::move(sig));
      }
    }
  }
  ok = check_parity(drop_layer_end(expected), drop_layer_end(engine_log),
                    "engine") &&
       ok;

  std::printf("  cross-backend op order parity: %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend = "sim";
  int arg = 1;
  if (arg < argc && std::strncmp(argv[arg], "--backend=", 10) == 0) {
    backend = argv[arg] + 10;
    ++arg;
  }
  if (argc - arg < 4 || (backend != "sim" && backend != "real")) {
    std::fprintf(stderr,
                 "usage: %s [--backend=sim|real] <program.dpipe> <model> "
                 "<machines> <group_batch> [dp_degree] [iterations]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream in(argv[arg]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[arg]);
      return 1;
    }
    const dpipe::InstructionProgram program = dpipe::load_program(in);
    dpipe::require_valid_program(program);
    const dpipe::ModelDesc model = model_by_name(argv[arg + 1]);
    const dpipe::ClusterSpec cluster =
        dpipe::make_p4de_cluster(std::atoi(argv[arg + 2]));
    const dpipe::CommModel comm(cluster);
    const dpipe::ProfileDb db(
        model,
        dpipe::AnalyticCostModel(cluster.device,
                                 dpipe::NoiseSource(0xD1FF, 0.02)),
        dpipe::default_batch_grid());
    const double group_batch = std::atof(argv[arg + 3]);
    const int dp = argc - arg >= 5 ? std::atoi(argv[arg + 4]) : 1;
    const int iterations = argc - arg >= 6 ? std::atoi(argv[arg + 5]) : 4;
    if (backend == "sim") {
      return run_sim(program, db, comm, argv[arg], group_batch, dp,
                     iterations);
    }
    return run_real(program, db, comm, argv[arg], dp, iterations);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
