// dpipe_run: DiffusionPipe's back-ends as a CLI. Loads an instruction
// program written by dpipe_plan and replays it on one of two backends that
// interpret the same validated program:
//
//   --backend=sim   discrete-event engine (modeled time, default)
//   --backend=real  functional runtime (real tensors, one thread per
//                   device walking its instruction stream)
//
// With --backend=real the tool also replays the program on the engine and
// cross-checks the per-device op order of both backends against the
// program's occupancy trace — the "one program, two backends" parity check.
//
// With --elastic the real runtime additionally absorbs an injected device
// crash halfway through: the ElasticRecoveryController aborts the wave,
// salvages the boundary checkpoint, re-plans for the shrunk cluster,
// re-shards the checkpoint onto the new stage geometry, and resumes —
// printing RecoveryStats and cross-checking every phase's op order.
//
//   dpipe_run [--backend=sim|real] [--elastic] <program.dpipe> <model>
//             <machines> <group_batch> [data_parallel_degree] [iterations]
//
// With --schedule the tool lowers its own trainer program instead of
// loading one: positionals become <stages> <micros> <group_batch>
// [data_parallel_degree] [iterations] and the chosen schedule family is
// built over the synthetic trainer model.
//
//   --schedule=1f1b|gpipe|interleaved   schedule family to lower
//   --vstages=N                         virtual stages per device
//                                       (interleaved only; default 1)
//
// 1f1b and interleaved run on both backends; gpipe is sim-only (its LIFO
// backward order is not runtime-bindable) and bidirectional programs come
// from dpipe_plan with a two-backbone cdm_* model.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/instr/serialize.h"
#include "core/instr/validate.h"
#include "engine/engine.h"
#include "fault/elastic.h"
#include "model/zoo.h"
#include "profiler/profiler.h"
#include "runtime/interpreter.h"
#include "runtime/pipeline_exec.h"

namespace {

dpipe::ModelDesc model_by_name(const std::string& name) {
  using namespace dpipe;
  if (name == "sd21") return make_stable_diffusion_v21();
  if (name == "controlnet") return make_controlnet_v10();
  if (name == "cdm_lsun") return make_cdm_lsun();
  if (name == "cdm_imagenet") return make_cdm_imagenet();
  if (name == "cdm_imagenet_full") return make_cdm_imagenet_full();
  if (name == "sdxl") return make_sdxl_base();
  if (name == "dit") return make_dit_xl2();
  throw std::invalid_argument("unknown model: " + name);
}

/// op_signature of a measured engine timeline op (occupying ops only).
std::string timeline_signature(const dpipe::PipelineOp& op) {
  dpipe::Instruction instr;
  switch (op.kind) {
    case dpipe::OpKind::kLoad:
      instr.kind = dpipe::InstrKind::kLoadMicroBatch;
      break;
    case dpipe::OpKind::kForward:
      instr.kind = dpipe::InstrKind::kForward;
      break;
    case dpipe::OpKind::kBackward:
      instr.kind = dpipe::InstrKind::kBackward;
      break;
    case dpipe::OpKind::kFrozenForward:
    case dpipe::OpKind::kFrozenForwardPartial:
    case dpipe::OpKind::kLeftoverForward:
      instr.kind = dpipe::InstrKind::kFrozenForward;
      break;
    case dpipe::OpKind::kOptimizer:
      instr.kind = dpipe::InstrKind::kOptimizerStep;
      break;
    case dpipe::OpKind::kGradSync:
      return {};  // Link op: occupies no device.
  }
  instr.backbone = op.backbone;
  instr.stage = op.stage;
  instr.micro = op.micro;
  instr.component = op.component;
  instr.layer_begin = op.layer;
  instr.layer_end = op.layer + 1;
  return op_signature(instr);
}

/// Measured timelines keep only a frozen op's first layer, so drop the
/// ":end" half of frozen signatures before comparing against them.
std::vector<std::vector<std::string>> drop_layer_end(
    std::vector<std::vector<std::string>> log) {
  for (std::vector<std::string>& stream : log) {
    for (std::string& sig : stream) {
      if (sig.rfind("frozen ", 0) == 0) {
        sig.resize(sig.find(':'));
      }
    }
  }
  return log;
}

/// Per-device PREFIX parity: every device's actual op order must be a
/// prefix of the expected trace (an aborted wave stops each stream early
/// but never reorders it).
bool check_prefix_parity(
    const std::vector<std::vector<std::string>>& expected,
    const std::vector<std::vector<std::string>>& actual, const char* what) {
  if (expected.size() != actual.size()) {
    std::fprintf(stderr, "parity FAILED (%s): device count %zu vs %zu\n",
                 what, expected.size(), actual.size());
    return false;
  }
  for (std::size_t dev = 0; dev < expected.size(); ++dev) {
    if (actual[dev].size() > expected[dev].size()) {
      std::fprintf(stderr,
                   "parity FAILED (%s) on device %zu: %zu ops executed, "
                   "only %zu expected\n",
                   what, dev, actual[dev].size(), expected[dev].size());
      return false;
    }
    for (std::size_t i = 0; i < actual[dev].size(); ++i) {
      if (actual[dev][i] != expected[dev][i]) {
        std::fprintf(stderr,
                     "parity FAILED (%s) on device %zu op %zu: expected "
                     "'%s', got '%s'\n",
                     what, dev, i, expected[dev][i].c_str(),
                     actual[dev][i].c_str());
        return false;
      }
    }
  }
  return true;
}

/// Per-device op-order parity between two execution records.
bool check_parity(const std::vector<std::vector<std::string>>& expected,
                  const std::vector<std::vector<std::string>>& actual,
                  const char* what) {
  if (expected.size() != actual.size()) {
    std::fprintf(stderr, "parity FAILED (%s): device count %zu vs %zu\n",
                 what, expected.size(), actual.size());
    return false;
  }
  for (std::size_t dev = 0; dev < expected.size(); ++dev) {
    if (expected[dev] == actual[dev]) {
      continue;
    }
    std::fprintf(stderr, "parity FAILED (%s) on device %zu:\n", what, dev);
    const std::size_t n = std::max(expected[dev].size(), actual[dev].size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& e =
          i < expected[dev].size() ? expected[dev][i] : "<none>";
      const std::string& a = i < actual[dev].size() ? actual[dev][i] : "<none>";
      if (e != a) {
        std::fprintf(stderr, "  op %zu: expected '%s', got '%s'\n", i,
                     e.c_str(), a.c_str());
        break;
      }
    }
    return false;
  }
  return true;
}

int run_sim(const dpipe::InstructionProgram& program,
            const dpipe::ProfileDb& db, const dpipe::CommModel& comm,
            const char* path, double group_batch, int dp, int iterations) {
  dpipe::EngineOptions options;
  options.group_batch = group_batch;
  options.data_parallel_degree = dp;
  options.iterations = iterations;
  const dpipe::ExecutionEngine engine(db, comm);
  const dpipe::EngineResult result = engine.run(program, options);
  std::printf("replayed %d iterations of %s (backend=sim):\n",
              options.iterations, path);
  std::printf("  steady iteration %.1f ms (first %.1f ms incl. "
              "preamble)\n",
              result.steady_iteration_ms,
              result.iterations[0].duration_ms());
  std::printf("  throughput %.1f samples/s, bubble ratio %.1f%%\n",
              result.samples_per_second, 100.0 * result.steady_bubble_ratio);
  return 0;
}

int run_real(const dpipe::InstructionProgram& program,
             const dpipe::ProfileDb& db, const dpipe::CommModel& comm,
             const char* path, int dp, int iterations) {
  using namespace dpipe;
  using namespace dpipe::rt;

  // Geometry from the program itself: micro-batch rows from the stage-0
  // load instructions, stage count from the binding.
  int num_stages = 0;
  int num_micros = 0;
  int per_micro = 0;
  for (const std::vector<Instruction>& stream : program.per_device) {
    for (const Instruction& instr : stream) {
      if (instr.kind == InstrKind::kLoadMicroBatch) {
        per_micro = std::max(
            per_micro, static_cast<int>(std::llround(instr.samples)));
        num_micros = std::max(num_micros, instr.micro + 1);
      } else if (instr.kind == InstrKind::kForward) {
        num_stages = std::max(num_stages, instr.stage + 1);
      }
    }
  }
  if (per_micro < 1 || num_micros < 1 || num_stages < 1) {
    std::fprintf(stderr, "error: program has no runnable backbone work\n");
    return 1;
  }

  DdpmConfig ddpm;
  // Enough MLP blocks that every pipeline stage gets at least one module.
  ddpm.depth = std::max(4, num_stages);
  const DdpmProblem problem(ddpm);

  PipelineRtConfig cfg;
  cfg.data_parallel_degree = dp;
  cfg.global_batch = per_micro * num_micros * dp;
  cfg.cross_iteration = true;
  cfg.record_execution = true;
  PipelineTrainer trainer(problem, cfg, program);
  trainer.train(iterations);

  std::printf("replayed %d iterations of %s (backend=real):\n", iterations,
              path);
  std::printf("  %d stages x %d micro-batches x %d replicas, "
              "global batch %d\n",
              num_stages, num_micros, dp, cfg.global_batch);
  std::printf("  losses:");
  for (double loss : trainer.losses()) {
    std::printf(" %.6f", loss);
  }
  std::printf("\n");

  // Cross-backend parity: the runtime's executed op order, the simulated
  // engine's measured timelines, and the program's static occupancy trace
  // must agree per device.
  const std::vector<std::vector<std::string>> expected =
      occupancy_trace(trainer.program(), iterations);
  bool ok = check_parity(expected, trainer.execution_log(), "runtime");

  EngineOptions sim;
  sim.group_batch = static_cast<double>(per_micro) * num_micros;
  sim.data_parallel_degree = dp;
  sim.iterations = iterations;
  sim.record_timelines = true;
  const ExecutionEngine engine(db, comm);
  const EngineResult result = engine.run(trainer.program(), sim);
  std::vector<std::vector<std::string>> engine_log(
      result.timelines.devices.size());
  for (std::size_t dev = 0; dev < result.timelines.devices.size(); ++dev) {
    for (const PipelineOp& op : result.timelines.devices[dev].ops) {
      std::string sig = timeline_signature(op);
      if (!sig.empty()) {
        engine_log[dev].push_back(std::move(sig));
      }
    }
  }
  ok = check_parity(drop_layer_end(expected), drop_layer_end(engine_log),
                    "engine") &&
       ok;

  std::printf("  cross-backend op order parity: %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

/// Replays `program` on the discrete-event engine for `iterations` and
/// returns its per-device occupying-op signatures.
std::vector<std::vector<std::string>> engine_replay(
    const dpipe::InstructionProgram& program, const dpipe::ProfileDb& db,
    const dpipe::CommModel& comm, double group_batch, int dp,
    int iterations) {
  using namespace dpipe;
  EngineOptions sim;
  sim.group_batch = group_batch;
  sim.data_parallel_degree = dp;
  sim.iterations = iterations;
  sim.record_timelines = true;
  const EngineResult result = ExecutionEngine(db, comm).run(program, sim);
  std::vector<std::vector<std::string>> engine_log(
      result.timelines.devices.size());
  for (std::size_t dev = 0; dev < result.timelines.devices.size(); ++dev) {
    for (const PipelineOp& op : result.timelines.devices[dev].ops) {
      std::string sig = timeline_signature(op);
      if (!sig.empty()) {
        engine_log[dev].push_back(std::move(sig));
      }
    }
  }
  return engine_log;
}

int run_elastic(const dpipe::InstructionProgram& program,
                const dpipe::ProfileDb& db, const dpipe::CommModel& comm,
                const char* path, int dp, int iterations) {
  using namespace dpipe;
  using namespace dpipe::rt;

  // Geometry from the program, exactly like run_real.
  int num_stages = 0;
  int num_micros = 0;
  int per_micro = 0;
  for (const std::vector<Instruction>& stream : program.per_device) {
    for (const Instruction& instr : stream) {
      if (instr.kind == InstrKind::kLoadMicroBatch) {
        per_micro = std::max(
            per_micro, static_cast<int>(std::llround(instr.samples)));
        num_micros = std::max(num_micros, instr.micro + 1);
      } else if (instr.kind == InstrKind::kForward) {
        num_stages = std::max(num_stages, instr.stage + 1);
      }
    }
  }
  if (per_micro < 1 || num_micros < 1 || num_stages < 1) {
    std::fprintf(stderr, "error: program has no runnable backbone work\n");
    return 1;
  }

  DdpmConfig ddpm;
  ddpm.depth = std::max(4, num_stages);
  const DdpmProblem problem(ddpm);

  ElasticOptions eopts;
  eopts.config.data_parallel_degree = dp;
  eopts.config.global_batch = per_micro * num_micros * dp;
  eopts.config.cross_iteration = true;
  eopts.config.record_execution = true;
  eopts.config.checkpoint_interval = 2;  // The restart baseline's cadence.
  eopts.initial_program = program;
  // One device dies mid-forward halfway through the run, on a middle stage.
  ElasticCrash crash;
  crash.iteration = iterations / 2;
  crash.stage = num_stages / 2;
  eopts.crashes = {crash};

  ElasticRecoveryController controller(problem, eopts);
  const RecoveryStats& stats = controller.run(iterations);

  std::printf("elastic run of %d iterations of %s:\n", iterations, path);
  std::printf("  losses:");
  for (double loss : controller.losses()) {
    std::printf(" %.6f", loss);
  }
  std::printf("\n");
  std::printf("  recovery: %d fault(s), %d re-plan(s) (%.1f ms), "
              "%d tensor(s) resharded\n",
              stats.faults, stats.replans, stats.replan_ms,
              stats.resharded_tensors);
  std::printf("  stage-cost cache: %zu hits / %zu misses across re-plans\n",
              stats.stage_cache_hits, stats.stage_cache_misses);
  std::printf("  iterations lost per fault: elastic %d, restart baseline "
              "%d\n",
              stats.iterations_lost, stats.restart_iterations_lost);

  // Per-phase parity: every phase's program is re-validated, the runtime's
  // executed op order is checked against the program's occupancy trace
  // (prefix for the aborted phase), and completed iterations are replayed
  // on the engine — the three-way harness, per recovery phase.
  bool ok = true;
  const int num_modules = 2 * ddpm.depth + 1;
  for (std::size_t p = 0; p < controller.phases().size(); ++p) {
    const RecoveryPhase& phase = controller.phases()[p];
    require_valid_program(phase.program);
    const int full_iters = phase.end_iteration - phase.start_iteration;
    const char* what = phase.crashed ? "runtime (crashed phase)" : "runtime";
    std::printf("  phase %zu: world %d, stages %d, iterations %d..%d%s\n",
                p, phase.world, phase.config.num_stages,
                phase.start_iteration, phase.end_iteration,
                phase.crashed ? " (aborted by crash)" : "");
    if (phase.crashed) {
      ok = check_prefix_parity(occupancy_trace(phase.program, full_iters + 1),
                               phase.log, what) &&
           ok;
    } else {
      ok = check_parity(occupancy_trace(phase.program, full_iters),
                        phase.log, what) &&
           ok;
    }
    if (full_iters < 1) {
      continue;  // Nothing completed for the engine to replay.
    }
    // Phase 0 runs the CLI-supplied program against the CLI model's db;
    // re-planned phases run programs lowered from the runtime's synthetic
    // model, so replay those against its db on the shrunk cluster.
    const double group_batch = static_cast<double>(
        phase.config.global_batch / phase.config.data_parallel_degree);
    std::vector<std::vector<std::string>> engine_log;
    if (p == 0) {
      engine_log = engine_replay(phase.program, db, comm, group_batch,
                                 phase.config.data_parallel_degree,
                                 full_iters);
    } else {
      const ClusterSpec shrunk = rt::elastic_cluster(phase.world);
      const ProfileDb synth_db(
          rt::trainer_planner_model(num_modules),
          AnalyticCostModel(shrunk.device, NoiseSource(1, 0.0)),
          default_batch_grid());
      engine_log = engine_replay(phase.program, synth_db, CommModel(shrunk),
                                 group_batch,
                                 phase.config.data_parallel_degree,
                                 full_iters);
    }
    const auto expected =
        drop_layer_end(occupancy_trace(phase.program, full_iters));
    if (phase.crashed) {
      ok = check_prefix_parity(expected, drop_layer_end(engine_log),
                               "engine") &&
           ok;
    } else {
      ok = check_parity(expected, drop_layer_end(engine_log), "engine") &&
           ok;
    }
  }
  std::printf("  per-phase op order parity: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

/// GPipe lowering over the synthetic trainer model — the sim-only sibling
/// of rt::lower_trainer_program (GPipe's LIFO backward order is not
/// runtime-bindable, so the library lowering rejects it).
dpipe::rt::TrainerLowering lower_gpipe_program(int S, int M, int G,
                                               int global_batch, int L) {
  using namespace dpipe;
  rt::TrainerLowering out;
  out.model = rt::trainer_planner_model(L);
  const ClusterSpec cluster = make_p4de_cluster((S * G + 7) / 8);
  const AnalyticCostModel cost(cluster.device, NoiseSource(1, 0.0));
  const ProfileDb db(out.model, cost, default_batch_grid());
  const CommModel comm(cluster);
  out.options.num_stages = S;
  out.options.num_microbatches = M;
  out.options.group_size = S;
  out.options.data_parallel_degree = G;
  out.options.microbatch_size =
      static_cast<double>(global_batch / G) / M;
  std::vector<StagePlan> stages(S);
  for (int s = 0; s < S; ++s) {
    stages[s].layer_begin = s * L / S;
    stages[s].layer_end = (s + 1) * L / S;
    stages[s].replicas = 1;
    stages[s].device_ranks = {s};
  }
  const ScheduleBuilder builder(db, comm);
  const Schedule schedule = builder.build_gpipe(0, stages, out.options);
  FillResult fill;
  fill.filled_schedule = schedule;
  out.program = generate_instructions(db, schedule, fill, out.options);
  return out;
}

/// --schedule mode: lower the requested family over the synthetic trainer
/// model and replay it on the chosen backend.
int run_lowered(const std::string& schedule, int vstages,
                const std::string& backend, int S, int Mi, double gb, int dp,
                int iterations) {
  using namespace dpipe;
  using namespace dpipe::rt;
  const ScheduleFamily family = parse_schedule_family(schedule);
  if (family == ScheduleFamily::kBidirectional) {
    std::fprintf(stderr,
                 "error: bidirectional schedules need a two-backbone model; "
                 "plan one with dpipe_plan and a cdm_* model instead\n");
    return 2;
  }
  if (S < 1 || Mi < 1 || dp < 1 || vstages < 1) {
    std::fprintf(stderr, "error: stages, micros, dp and vstages must be "
                         "positive\n");
    return 2;
  }
  const int group_batch = static_cast<int>(std::llround(gb));
  if (group_batch < Mi || group_batch % Mi != 0) {
    std::fprintf(stderr,
                 "error: group_batch must be a positive multiple of the "
                 "micro-batch count\n");
    return 2;
  }
  const int St = family == ScheduleFamily::kInterleaved ? S * vstages : S;
  // 1:1 with the DdpmProblem geometry run_real builds (depth blocks =
  // 2*depth+1 modules), so the binding's module map is the identity.
  const int num_modules = 2 * std::max(4, St) + 1;

  TrainerLowering lowering;
  if (family == ScheduleFamily::kGpipe) {
    lowering = lower_gpipe_program(S, Mi, dp, group_batch * dp, num_modules);
  } else {
    TrainerLoweringSpec spec;
    spec.num_stages = S;
    spec.num_microbatches = Mi;
    spec.data_parallel_degree = dp;
    spec.global_batch = group_batch * dp;
    spec.cross_iteration = true;
    spec.num_modules = num_modules;
    spec.family = family;
    spec.vstages = vstages;
    lowering = lower_trainer_program(spec);
  }
  require_valid_program(lowering.program);

  const ClusterSpec cluster = make_p4de_cluster((S * dp + 7) / 8);
  const CommModel comm(cluster);
  const ProfileDb db(lowering.model,
                     AnalyticCostModel(cluster.device, NoiseSource(1, 0.0)),
                     default_batch_grid());
  std::string label = "<" + schedule;
  if (family == ScheduleFamily::kInterleaved) {
    label += " v" + std::to_string(vstages);
  }
  label += ">";
  if (backend == "sim") {
    return run_sim(lowering.program, db, comm, label.c_str(), gb, dp,
                   iterations);
  }
  return run_real(lowering.program, db, comm, label.c_str(), dp, iterations);
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend = "sim";
  std::string schedule;
  int vstages = 1;
  bool elastic = false;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strncmp(argv[arg], "--backend=", 10) == 0) {
      backend = argv[arg] + 10;
    } else if (std::strncmp(argv[arg], "--schedule=", 11) == 0) {
      schedule = argv[arg] + 11;
    } else if (std::strncmp(argv[arg], "--vstages=", 10) == 0) {
      vstages = std::atoi(argv[arg] + 10);
    } else if (std::strcmp(argv[arg], "--elastic") == 0) {
      elastic = true;
      backend = "real";  // Recovery runs on the functional runtime.
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (backend != "sim" && backend != "real") {
    std::fprintf(stderr, "unknown backend: %s\n", backend.c_str());
    return 2;
  }
  if (!schedule.empty()) {
    if (elastic || argc - arg < 3) {
      std::fprintf(stderr,
                   "usage: %s --schedule=1f1b|gpipe|interleaved "
                   "[--vstages=N] [--backend=sim|real] <stages> <micros> "
                   "<group_batch> [dp_degree] [iterations]\n",
                   argv[0]);
      return 2;
    }
    try {
      return run_lowered(schedule, vstages, backend, std::atoi(argv[arg]),
                         std::atoi(argv[arg + 1]), std::atof(argv[arg + 2]),
                         argc - arg >= 4 ? std::atoi(argv[arg + 3]) : 1,
                         argc - arg >= 5 ? std::atoi(argv[arg + 4]) : 4);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }
  if (argc - arg < 4) {
    std::fprintf(stderr,
                 "usage: %s [--backend=sim|real] [--elastic] "
                 "<program.dpipe> <model> <machines> <group_batch> "
                 "[dp_degree] [iterations]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream in(argv[arg]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[arg]);
      return 1;
    }
    const dpipe::InstructionProgram program = dpipe::load_program(in);
    dpipe::require_valid_program(program);
    const dpipe::ModelDesc model = model_by_name(argv[arg + 1]);
    const dpipe::ClusterSpec cluster =
        dpipe::make_p4de_cluster(std::atoi(argv[arg + 2]));
    const dpipe::CommModel comm(cluster);
    const dpipe::ProfileDb db(
        model,
        dpipe::AnalyticCostModel(cluster.device,
                                 dpipe::NoiseSource(0xD1FF, 0.02)),
        dpipe::default_batch_grid());
    const double group_batch = std::atof(argv[arg + 3]);
    const int dp = argc - arg >= 5 ? std::atoi(argv[arg + 4]) : 1;
    const int iterations = argc - arg >= 6 ? std::atoi(argv[arg + 5]) : 4;
    if (elastic) {
      return run_elastic(program, db, comm, argv[arg], dp, iterations);
    }
    if (backend == "sim") {
      return run_sim(program, db, comm, argv[arg], group_batch, dp,
                     iterations);
    }
    return run_real(program, db, comm, argv[arg], dp, iterations);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
