// dpipe_run: DiffusionPipe's back-end as a CLI. Loads an instruction
// program written by dpipe_plan and replays it on the discrete-event
// engine.
//
//   dpipe_run <program.dpipe> <model> <machines> <group_batch>
//             [data_parallel_degree] [iterations]

#include <cstdio>
#include <fstream>

#include "core/instr/serialize.h"
#include "engine/engine.h"
#include "model/zoo.h"
#include "profiler/profiler.h"

namespace {

dpipe::ModelDesc model_by_name(const std::string& name) {
  using namespace dpipe;
  if (name == "sd21") return make_stable_diffusion_v21();
  if (name == "controlnet") return make_controlnet_v10();
  if (name == "cdm_lsun") return make_cdm_lsun();
  if (name == "cdm_imagenet") return make_cdm_imagenet();
  if (name == "cdm_imagenet_full") return make_cdm_imagenet_full();
  if (name == "sdxl") return make_sdxl_base();
  if (name == "dit") return make_dit_xl2();
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <program.dpipe> <model> <machines> "
                 "<group_batch> [dp_degree] [iterations]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    const dpipe::InstructionProgram program = dpipe::load_program(in);
    const dpipe::ModelDesc model = model_by_name(argv[2]);
    const dpipe::ClusterSpec cluster =
        dpipe::make_p4de_cluster(std::atoi(argv[3]));
    const dpipe::CommModel comm(cluster);
    const dpipe::ProfileDb db(
        model,
        dpipe::AnalyticCostModel(cluster.device,
                                 dpipe::NoiseSource(0xD1FF, 0.02)),
        dpipe::default_batch_grid());

    dpipe::EngineOptions options;
    options.group_batch = std::atof(argv[4]);
    options.data_parallel_degree = argc >= 6 ? std::atoi(argv[5]) : 1;
    options.iterations = argc >= 7 ? std::atoi(argv[6]) : 4;
    const dpipe::ExecutionEngine engine(db, comm);
    const dpipe::EngineResult result = engine.run(program, options);
    std::printf("replayed %d iterations of %s:\n", options.iterations,
                argv[1]);
    std::printf("  steady iteration %.1f ms (first %.1f ms incl. "
                "preamble)\n",
                result.steady_iteration_ms,
                result.iterations[0].duration_ms());
    std::printf("  throughput %.1f samples/s, bubble ratio %.1f%%\n",
                result.samples_per_second,
                100.0 * result.steady_bubble_ratio);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
