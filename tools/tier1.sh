#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the concurrency-sensitive runtime and fault
# tests (thread-per-stage program interpreter, channel shutdown, checkpoint
# recovery, cross-backend parity) plus the parallel planner-search
# determinism tests, the kernel/pool substrate tests (row-block fan-out,
# concurrent TensorPool), and the plan-service suites (single-flight cache,
# stage-cost leases, concurrent request determinism), ending with a
# socket-level request-storm smoke of dpipe_plan_serve.
# Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "== tier-1: scalar-forced kernel pass (DPIPE_SIMD=scalar) =="
# The portable fallback must stay green on machines without AVX2: force the
# dispatch level to scalar and rerun the kernel, pool, SIMD, and trajectory
# suites against it.
DPIPE_SIMD=scalar ./build/tests/dpipe_tests \
  --gtest_filter='Kernels.*:TensorPool.*:Trajectory.*:RngSeed.*:SimdDispatch.*:SimdParity.*:FastMode.*:Roofline.*:Eltwise*'

echo "== tier-1: ThreadSanitizer build (runtime + fault + service tests) =="
cmake -B build-tsan -S . -DDPIPE_SANITIZE=thread
cmake --build build-tsan -j"$(nproc)" --target dpipe_tests
# DPIPE_WAVE_EXEC=threads: on single-CPU hosts the interpreter would
# auto-select the cooperative serial wave scheduler, which has no thread
# interleavings for TSan to check — force the threaded path here.
TSAN_OPTIONS="halt_on_error=1" DPIPE_WAVE_EXEC=threads \
  ./build-tsan/tests/dpipe_tests \
  --gtest_filter='Channel.*:PipelineTrainer.*:Equivalence.*:Fault.*:ParallelFor.*:PlannerSearch.*:Kernels.*:TensorPool.*:Trajectory.*:RngSeed.*:SimdDispatch.*:SimdParity.*:FastMode.*:Interpreter.*:Parity.*:Interleaved.*:Elastic.*:Reshard.*:CheckpointIo.*:PlanFingerprint.*:StageCostStore.*:PlanCache.*:PlanStore.*:PlanService.*:PlanProtocol.*:Eltwise*'

echo "== tier-1: interleaved schedule smoke (both wave-executor modes) =="
# The interleaved family exercises multi-virtual-stage device timelines on
# the functional runtime; both wave executors must replay it with clean
# cross-backend op-order parity.
DPIPE_WAVE_EXEC=threads ./build/tools/dpipe_run --schedule=interleaved \
  --vstages=2 --backend=real 2 4 8 1 2 | grep -q "parity: OK"
DPIPE_WAVE_EXEC=serial ./build/tools/dpipe_run --schedule=interleaved \
  --vstages=2 --backend=real 2 4 8 1 2 | grep -q "parity: OK"
./build/tools/dpipe_run --schedule=interleaved --vstages=2 --backend=sim \
  2 4 8 1 2 > /dev/null

echo "== tier-1: plan-server request-storm smoke (socket, concurrent clients) =="
# Three concurrent clients hammer one dpipe_plan_serve over a Unix socket:
# 6 requests over 2 distinct plans, so the summary must show cache hits
# and at most 2 planner runs.
STORM_DIR="$(mktemp -d)"
STORM_SOCK="$STORM_DIR/dpipe.sock"
./build/tools/dpipe_plan_serve --socket "$STORM_SOCK" \
  --store "$STORM_DIR/plans" --max-requests 6 > "$STORM_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
  [ -S "$STORM_SOCK" ] && break
  sleep 0.3
done
for client in 1 2 3; do
  (
    ./build/tools/dpipe_plan sd21 1 256 --connect "$STORM_SOCK" &&
    ./build/tools/dpipe_plan controlnet 1 256 --connect "$STORM_SOCK"
  ) > "$STORM_DIR/client$client.log" 2>&1 &
done
wait "$SERVE_PID"
wait  # Reap the client subshells before inspecting their logs.
cat "$STORM_DIR/serve.log"
grep -q "cache hit" "$STORM_DIR/serve.log"
grep -q "served from plan cache\|planned by server" "$STORM_DIR/client1.log"
rm -rf "$STORM_DIR"

echo "tier-1 OK"
