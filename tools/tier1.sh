#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the concurrency-sensitive runtime and fault
# tests (thread-per-stage program interpreter, channel shutdown, checkpoint
# recovery, cross-backend parity) plus the parallel planner-search
# determinism tests and the kernel/pool substrate tests (row-block fan-out,
# concurrent TensorPool).
# Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "== tier-1: scalar-forced kernel pass (DPIPE_SIMD=scalar) =="
# The portable fallback must stay green on machines without AVX2: force the
# dispatch level to scalar and rerun the kernel, pool, SIMD, and trajectory
# suites against it.
DPIPE_SIMD=scalar ./build/tests/dpipe_tests \
  --gtest_filter='Kernels.*:TensorPool.*:Trajectory.*:RngSeed.*:SimdDispatch.*:SimdParity.*:FastMode.*:Roofline.*'

echo "== tier-1: ThreadSanitizer build (runtime + fault tests) =="
cmake -B build-tsan -S . -DDPIPE_SANITIZE=thread
cmake --build build-tsan -j"$(nproc)" --target dpipe_tests
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/dpipe_tests \
  --gtest_filter='Channel.*:PipelineTrainer.*:Equivalence.*:Fault.*:ParallelFor.*:PlannerSearch.*:Kernels.*:TensorPool.*:Trajectory.*:RngSeed.*:SimdDispatch.*:SimdParity.*:FastMode.*:Interpreter.*:Parity.*:Elastic.*:Reshard.*:CheckpointIo.*'

echo "tier-1 OK"
