file(REMOVE_RECURSE
  "CMakeFiles/controlnet_cluster.dir/controlnet_cluster.cpp.o"
  "CMakeFiles/controlnet_cluster.dir/controlnet_cluster.cpp.o.d"
  "controlnet_cluster"
  "controlnet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controlnet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
