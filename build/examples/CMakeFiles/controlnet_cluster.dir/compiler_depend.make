# Empty compiler generated dependencies file for controlnet_cluster.
# This may be replaced when dependencies are built.
