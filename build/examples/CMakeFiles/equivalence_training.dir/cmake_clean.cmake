file(REMOVE_RECURSE
  "CMakeFiles/equivalence_training.dir/equivalence_training.cpp.o"
  "CMakeFiles/equivalence_training.dir/equivalence_training.cpp.o.d"
  "equivalence_training"
  "equivalence_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
