# Empty dependencies file for equivalence_training.
# This may be replaced when dependencies are built.
