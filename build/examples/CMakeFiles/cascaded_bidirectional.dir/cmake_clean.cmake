file(REMOVE_RECURSE
  "CMakeFiles/cascaded_bidirectional.dir/cascaded_bidirectional.cpp.o"
  "CMakeFiles/cascaded_bidirectional.dir/cascaded_bidirectional.cpp.o.d"
  "cascaded_bidirectional"
  "cascaded_bidirectional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascaded_bidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
