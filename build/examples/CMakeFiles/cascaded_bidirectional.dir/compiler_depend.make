# Empty compiler generated dependencies file for cascaded_bidirectional.
# This may be replaced when dependencies are built.
