
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_details.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_baseline_details.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_baseline_details.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_comm_properties.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_comm_properties.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_comm_properties.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fill.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_fill.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_fill.cpp.o.d"
  "/root/repo/tests/test_instructions.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_instructions.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_instructions.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_model_zoo.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_model_zoo.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_model_zoo.cpp.o.d"
  "/root/repo/tests/test_partitioner.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_partitioner.cpp.o.d"
  "/root/repo/tests/test_planner.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_planner.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_planner.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/dpipe_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/dpipe_tests.dir/test_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
