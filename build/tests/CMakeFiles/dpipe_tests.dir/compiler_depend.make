# Empty compiler generated dependencies file for dpipe_tests.
# This may be replaced when dependencies are built.
