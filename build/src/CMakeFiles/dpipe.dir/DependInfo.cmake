
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cdm_dp.cpp" "src/CMakeFiles/dpipe.dir/baselines/cdm_dp.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/baselines/cdm_dp.cpp.o.d"
  "/root/repo/src/baselines/ddp.cpp" "src/CMakeFiles/dpipe.dir/baselines/ddp.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/baselines/ddp.cpp.o.d"
  "/root/repo/src/baselines/gpipe_baseline.cpp" "src/CMakeFiles/dpipe.dir/baselines/gpipe_baseline.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/baselines/gpipe_baseline.cpp.o.d"
  "/root/repo/src/baselines/spp.cpp" "src/CMakeFiles/dpipe.dir/baselines/spp.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/baselines/spp.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/dpipe.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/comm_model.cpp" "src/CMakeFiles/dpipe.dir/cluster/comm_model.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/cluster/comm_model.cpp.o.d"
  "/root/repo/src/common/noise.cpp" "src/CMakeFiles/dpipe.dir/common/noise.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/common/noise.cpp.o.d"
  "/root/repo/src/common/pareto.cpp" "src/CMakeFiles/dpipe.dir/common/pareto.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/common/pareto.cpp.o.d"
  "/root/repo/src/common/timeline.cpp" "src/CMakeFiles/dpipe.dir/common/timeline.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/common/timeline.cpp.o.d"
  "/root/repo/src/core/fill/ffc.cpp" "src/CMakeFiles/dpipe.dir/core/fill/ffc.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/fill/ffc.cpp.o.d"
  "/root/repo/src/core/fill/filler.cpp" "src/CMakeFiles/dpipe.dir/core/fill/filler.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/fill/filler.cpp.o.d"
  "/root/repo/src/core/instr/instructions.cpp" "src/CMakeFiles/dpipe.dir/core/instr/instructions.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/instr/instructions.cpp.o.d"
  "/root/repo/src/core/instr/serialize.cpp" "src/CMakeFiles/dpipe.dir/core/instr/serialize.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/instr/serialize.cpp.o.d"
  "/root/repo/src/core/partition/bidirectional.cpp" "src/CMakeFiles/dpipe.dir/core/partition/bidirectional.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/partition/bidirectional.cpp.o.d"
  "/root/repo/src/core/partition/brute_force.cpp" "src/CMakeFiles/dpipe.dir/core/partition/brute_force.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/partition/brute_force.cpp.o.d"
  "/root/repo/src/core/partition/grouping.cpp" "src/CMakeFiles/dpipe.dir/core/partition/grouping.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/partition/grouping.cpp.o.d"
  "/root/repo/src/core/partition/partitioner.cpp" "src/CMakeFiles/dpipe.dir/core/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/partition/partitioner.cpp.o.d"
  "/root/repo/src/core/planner/planner.cpp" "src/CMakeFiles/dpipe.dir/core/planner/planner.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/planner/planner.cpp.o.d"
  "/root/repo/src/core/schedule/builder_1f1b.cpp" "src/CMakeFiles/dpipe.dir/core/schedule/builder_1f1b.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/schedule/builder_1f1b.cpp.o.d"
  "/root/repo/src/core/schedule/builder_bidir.cpp" "src/CMakeFiles/dpipe.dir/core/schedule/builder_bidir.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/schedule/builder_bidir.cpp.o.d"
  "/root/repo/src/core/schedule/builder_gpipe.cpp" "src/CMakeFiles/dpipe.dir/core/schedule/builder_gpipe.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/schedule/builder_gpipe.cpp.o.d"
  "/root/repo/src/core/schedule/schedule.cpp" "src/CMakeFiles/dpipe.dir/core/schedule/schedule.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/schedule/schedule.cpp.o.d"
  "/root/repo/src/core/schedule/trace.cpp" "src/CMakeFiles/dpipe.dir/core/schedule/trace.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/core/schedule/trace.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/CMakeFiles/dpipe.dir/engine/engine.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/engine/engine.cpp.o.d"
  "/root/repo/src/engine/memory.cpp" "src/CMakeFiles/dpipe.dir/engine/memory.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/engine/memory.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/CMakeFiles/dpipe.dir/model/model.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/model/model.cpp.o.d"
  "/root/repo/src/model/zoo.cpp" "src/CMakeFiles/dpipe.dir/model/zoo.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/model/zoo.cpp.o.d"
  "/root/repo/src/profiler/cost_model.cpp" "src/CMakeFiles/dpipe.dir/profiler/cost_model.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/profiler/cost_model.cpp.o.d"
  "/root/repo/src/profiler/profile_db.cpp" "src/CMakeFiles/dpipe.dir/profiler/profile_db.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/profiler/profile_db.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/CMakeFiles/dpipe.dir/profiler/profiler.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/profiler/profiler.cpp.o.d"
  "/root/repo/src/runtime/ddpm.cpp" "src/CMakeFiles/dpipe.dir/runtime/ddpm.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/runtime/ddpm.cpp.o.d"
  "/root/repo/src/runtime/dp_trainer.cpp" "src/CMakeFiles/dpipe.dir/runtime/dp_trainer.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/runtime/dp_trainer.cpp.o.d"
  "/root/repo/src/runtime/modules.cpp" "src/CMakeFiles/dpipe.dir/runtime/modules.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/runtime/modules.cpp.o.d"
  "/root/repo/src/runtime/optim.cpp" "src/CMakeFiles/dpipe.dir/runtime/optim.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/runtime/optim.cpp.o.d"
  "/root/repo/src/runtime/pipeline_exec.cpp" "src/CMakeFiles/dpipe.dir/runtime/pipeline_exec.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/runtime/pipeline_exec.cpp.o.d"
  "/root/repo/src/runtime/tensor.cpp" "src/CMakeFiles/dpipe.dir/runtime/tensor.cpp.o" "gcc" "src/CMakeFiles/dpipe.dir/runtime/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
