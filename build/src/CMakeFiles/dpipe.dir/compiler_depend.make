# Empty compiler generated dependencies file for dpipe.
# This may be replaced when dependencies are built.
