file(REMOVE_RECURSE
  "libdpipe.a"
)
