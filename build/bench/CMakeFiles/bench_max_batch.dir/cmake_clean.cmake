file(REMOVE_RECURSE
  "CMakeFiles/bench_max_batch.dir/bench_max_batch.cpp.o"
  "CMakeFiles/bench_max_batch.dir/bench_max_batch.cpp.o.d"
  "bench_max_batch"
  "bench_max_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_max_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
