# Empty dependencies file for bench_max_batch.
# This may be replaced when dependencies are built.
