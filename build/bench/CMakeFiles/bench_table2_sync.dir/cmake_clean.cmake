file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sync.dir/bench_table2_sync.cpp.o"
  "CMakeFiles/bench_table2_sync.dir/bench_table2_sync.cpp.o.d"
  "bench_table2_sync"
  "bench_table2_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
