# Empty dependencies file for bench_table1_ratio.
# This may be replaced when dependencies are built.
