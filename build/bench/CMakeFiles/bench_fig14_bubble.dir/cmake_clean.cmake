file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_bubble.dir/bench_fig14_bubble.cpp.o"
  "CMakeFiles/bench_fig14_bubble.dir/bench_fig14_bubble.cpp.o.d"
  "bench_fig14_bubble"
  "bench_fig14_bubble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_bubble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
