# Empty compiler generated dependencies file for bench_fig14_bubble.
# This may be replaced when dependencies are built.
