file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bubble_ratio.dir/bench_fig4_bubble_ratio.cpp.o"
  "CMakeFiles/bench_fig4_bubble_ratio.dir/bench_fig4_bubble_ratio.cpp.o.d"
  "bench_fig4_bubble_ratio"
  "bench_fig4_bubble_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bubble_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
