# Empty compiler generated dependencies file for dpipe_run.
# This may be replaced when dependencies are built.
