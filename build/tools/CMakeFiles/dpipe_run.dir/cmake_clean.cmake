file(REMOVE_RECURSE
  "CMakeFiles/dpipe_run.dir/dpipe_run.cpp.o"
  "CMakeFiles/dpipe_run.dir/dpipe_run.cpp.o.d"
  "dpipe_run"
  "dpipe_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpipe_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
