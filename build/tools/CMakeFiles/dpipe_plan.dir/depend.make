# Empty dependencies file for dpipe_plan.
# This may be replaced when dependencies are built.
