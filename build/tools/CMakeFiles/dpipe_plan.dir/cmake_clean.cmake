file(REMOVE_RECURSE
  "CMakeFiles/dpipe_plan.dir/dpipe_plan.cpp.o"
  "CMakeFiles/dpipe_plan.dir/dpipe_plan.cpp.o.d"
  "dpipe_plan"
  "dpipe_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpipe_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
